// Package dataset provides the real-world-driving substitute for the
// paper's Argoverse study (§V-D): a seeded generator of benign,
// human-compliant driving logs with a long tail of mildly risky events,
// plus the four hand-built safety-critical case-study scenes of Fig. 7.
//
// Argoverse itself is unavailable offline; what §V-D needs from it is a
// corpus whose actor-risk distribution is overwhelmingly benign (so the
// NHTSA scenarios register as out-of-distribution) and in which STI can
// mine the rare risky scene. The generator is calibrated for exactly that
// shape: compliant lane-keeping traffic at safe headways, with occasional
// crossings, merges, and badly parked vehicles.
package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

// Log is one recorded drive: the full ground-truth state history of the ego
// and every other actor, analogous to one Argoverse scenario log.
type Log struct {
	Map roadmap.Map
	Dt  float64
	// Ego[t] is the ego state at step t.
	Ego []vehicle.State
	// Actors[i][t] is actor i's state at step t.
	Actors [][]vehicle.State
	// Meta describes each actor (footprint size, kind).
	Meta []ActorMeta
}

// ActorMeta is the static description of a logged actor.
type ActorMeta struct {
	ID     int
	Kind   actor.Kind
	Length float64
	Width  float64
}

// Steps returns the number of recorded steps.
func (l *Log) Steps() int { return len(l.Ego) }

// ActorsAt reconstructs the actor set at step t, with yaw rates estimated
// from the recorded headings (needed only for prediction-based metrics).
func (l *Log) ActorsAt(t int) []*actor.Actor {
	out := make([]*actor.Actor, len(l.Actors))
	for i, states := range l.Actors {
		a := &actor.Actor{
			ID:     l.Meta[i].ID,
			Kind:   l.Meta[i].Kind,
			State:  states[t],
			Length: l.Meta[i].Length,
			Width:  l.Meta[i].Width,
		}
		if t > 0 && l.Dt > 0 {
			a.YawRate = geom.AngleDiff(states[t].Heading, states[t-1].Heading) / l.Dt
		}
		out[i] = a
	}
	return out
}

// FutureTrajectories returns each actor's recorded ground-truth trajectory
// from step t onwards — the X_{t:t+k} used for STI evaluation on datasets
// (§IV-C uses ground truth for characterisation).
func (l *Log) FutureTrajectories(t int) []actor.Trajectory {
	out := make([]actor.Trajectory, len(l.Actors))
	for i, states := range l.Actors {
		out[i] = actor.Trajectory{Dt: l.Dt, States: states[t:]}
	}
	return out
}

// CorpusConfig parameterises the synthetic corpus.
type CorpusConfig struct {
	Logs  int
	Steps int // steps per log
	Dt    float64
	Seed  int64
	// RiskEventProb is the chance that a log contains one mildly risky
	// event (crossing pedestrian, close merge, badly parked vehicle).
	RiskEventProb float64
}

// DefaultCorpusConfig returns the configuration used for Fig. 6.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{
		Logs:          40,
		Steps:         150,
		Dt:            0.1,
		Seed:          1,
		RiskEventProb: 0.25,
	}
}

// GenerateCorpus produces the synthetic driving corpus.
func GenerateCorpus(cfg CorpusConfig) ([]*Log, error) {
	if cfg.Logs < 1 || cfg.Steps < 2 || cfg.Dt <= 0 {
		return nil, fmt.Errorf("dataset: invalid corpus config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	logs := make([]*Log, cfg.Logs)
	for i := range logs {
		logs[i] = generateLog(cfg, rng)
	}
	return logs, nil
}

// generateLog simulates one benign drive and records it. The road is a
// three-lane arterial with the ego in the middle lane — real-world logs are
// collected on roads with far more escape room than the two-lane NHTSA
// typologies, which is part of why their actor-STI tail is so light.
func generateLog(cfg CorpusConfig, rng *rand.Rand) *Log {
	road := roadmap.MustStraightRoad(3, 3.5, -200, 2000)
	const egoLane = 5.25 // middle lane centre
	egoSpeed := 9 + rng.Float64()*4
	ego := vehicle.State{Pos: geom.V(0, egoLane), Speed: egoSpeed}

	var actors []*actor.Actor
	var behaviors []sim.Behavior
	id := 1

	// A compliant lead with a safe (≥ 2 s) headway.
	leadGap := egoSpeed*2 + 5 + rng.Float64()*40
	leadSpeed := egoSpeed + rng.Float64()*2 - 0.5
	actors = append(actors, actor.NewVehicle(id, vehicle.State{Pos: geom.V(leadGap, egoLane), Speed: leadSpeed}))
	behaviors = append(behaviors, &sim.Cruise{TargetY: egoLane, TargetSpeed: leadSpeed})
	id++

	// Adjacent-lane traffic at comfortable longitudinal offsets, moving
	// with the flow.
	for n := 0; n < 2+rng.Intn(3); n++ {
		x := -60 + rng.Float64()*160
		if x > -12 && x < 12 {
			x += 30 // no spawning on top of the ego
		}
		v := egoSpeed + rng.Float64()*4 - 2
		laneY := 1.75
		if rng.Intn(2) == 0 {
			laneY = 8.75
		}
		actors = append(actors, actor.NewVehicle(id, vehicle.State{Pos: geom.V(x, laneY), Speed: v}))
		behaviors = append(behaviors, &sim.Cruise{TargetY: laneY, TargetSpeed: v})
		id++
	}

	// A trailing follower running the Intelligent Driver Model, so it
	// tracks the ego with human-like dynamic gaps.
	if rng.Float64() < 0.7 {
		gap := egoSpeed*2 + 5 + rng.Float64()*25
		actors = append(actors, actor.NewVehicle(id, vehicle.State{Pos: geom.V(-gap, egoLane), Speed: egoSpeed}))
		behaviors = append(behaviors, &sim.IDM{TargetY: egoLane, DesiredSpeed: egoSpeed + 1})
		id++
	}

	// Long tail: one mildly risky event in a minority of logs.
	if rng.Float64() < cfg.RiskEventProb {
		switch rng.Intn(3) {
		case 0: // pedestrian crossing well ahead
			ped := actor.NewPedestrian(id, vehicle.State{
				Pos: geom.V(60+rng.Float64()*40, -1), Heading: 1.5708, Speed: 1.4,
			})
			actors = append(actors, ped)
			behaviors = append(behaviors, &sim.Cruise{TargetY: 10.5, TargetSpeed: 1.4})
		case 1: // courteous merge with a real but safe gap
			x := 35 + rng.Float64()*20
			actors = append(actors, actor.NewVehicle(id, vehicle.State{Pos: geom.V(x, 1.75), Speed: egoSpeed}))
			behaviors = append(behaviors, &sim.CutIn{
				FromY: 1.75, ToY: egoLane,
				CruiseSpeed: egoSpeed, CutSpeed: egoSpeed - 2,
				TriggerDX: 12, TriggerWhenAhead: true,
			})
		default: // badly parked vehicle intruding into the outer lane
			x := 60 + rng.Float64()*60
			parked := actor.NewVehicle(id, vehicle.State{Pos: geom.V(x, 0.4), Heading: 0.12})
			parked.Kind = actor.KindStatic
			actors = append(actors, parked)
			behaviors = append(behaviors, &sim.Stationary{})
		}
		id++
	}

	w, err := sim.NewWorld(road, ego, geom.V(1e9, 1.75), cfg.Dt, actors, behaviors)
	if err != nil {
		// The generator only builds valid worlds; a failure is a bug.
		panic(fmt.Sprintf("dataset: generateLog: %v", err))
	}
	log := &Log{Map: road, Dt: cfg.Dt, Actors: make([][]vehicle.State, len(actors))}
	for i, a := range actors {
		log.Meta = append(log.Meta, ActorMeta{ID: a.ID, Kind: a.Kind, Length: a.Length, Width: a.Width})
		log.Actors[i] = make([]vehicle.State, 0, cfg.Steps)
	}

	// The ego is driven by a simple compliant cruiser that eases off when
	// the headway shrinks (human-like, accident-free driving).
	for t := 0; t < cfg.Steps; t++ {
		log.Ego = append(log.Ego, w.Ego.State)
		for i, a := range w.Actors {
			log.Actors[i] = append(log.Actors[i], a.State)
		}
		w.Advance(compliantEgoControl(w, egoLane, egoSpeed))
	}
	return log
}

// compliantEgoControl keeps the lane and eases to the lead's speed at a
// comfortable 2 s headway.
func compliantEgoControl(w *sim.World, targetY, targetSpeed float64) vehicle.Control {
	ego := w.Ego.State
	latErr := targetY - ego.Pos.Y
	steer := geom.Clamp(0.2*latErr-1.2*ego.Heading, -0.6, 0.6)
	accel := geom.Clamp(1.2*(targetSpeed-ego.Speed), -3, 2)
	for _, a := range w.Actors {
		dx := a.State.Pos.X - ego.Pos.X
		if dx <= 0 || dx > 60 {
			continue
		}
		if absF(a.State.Pos.Y-ego.Pos.Y) > 1.8 {
			continue
		}
		headway := dx / maxF(ego.Speed, 0.1)
		if headway < 2.0 {
			accel = geom.Clamp(1.5*(a.State.Speed-ego.Speed)-0.5, -4, accel)
		}
	}
	return vehicle.Control{Accel: accel, Steer: steer}
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
