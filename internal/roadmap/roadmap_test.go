package roadmap

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestNewStraightRoadValidation(t *testing.T) {
	tests := []struct {
		name       string
		lanes      int
		width      float64
		xMin, xMax float64
		wantErr    bool
	}{
		{"valid", 3, 3.5, 0, 500, false},
		{"zero lanes", 0, 3.5, 0, 500, true},
		{"negative width", 2, -1, 0, 500, true},
		{"empty extent", 2, 3.5, 100, 100, true},
		{"inverted extent", 2, 3.5, 100, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewStraightRoad(tt.lanes, tt.width, tt.xMin, tt.xMax)
			if (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestMustStraightRoadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustStraightRoad should panic on invalid input")
		}
	}()
	MustStraightRoad(0, 3.5, 0, 100)
}

func TestStraightRoadDrivable(t *testing.T) {
	r := MustStraightRoad(2, 3.5, 0, 200)
	tests := []struct {
		p    geom.Vec2
		want bool
	}{
		{geom.V(100, 3.5), true},
		{geom.V(100, 0), true},
		{geom.V(100, 7), true},
		{geom.V(100, 7.1), false},
		{geom.V(100, -0.1), false},
		{geom.V(-1, 3.5), false},
		{geom.V(201, 3.5), false},
	}
	for _, tt := range tests {
		if got := r.Drivable(tt.p); got != tt.want {
			t.Errorf("Drivable(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestStraightRoadDrivableBox(t *testing.T) {
	r := MustStraightRoad(2, 3.5, 0, 200)
	inside := geom.NewBox(geom.V(50, 3.5), 4.7, 2.0, 0)
	if !r.DrivableBox(inside) {
		t.Error("box inside road reported off-road")
	}
	offEdge := geom.NewBox(geom.V(50, 6.5), 4.7, 2.0, 0)
	if r.DrivableBox(offEdge) {
		t.Error("box crossing road edge reported drivable")
	}
	// Longitudinal overhang past the modelled segment end is allowed.
	atEnd := geom.NewBox(geom.V(199, 3.5), 4.7, 2.0, 0)
	if !r.DrivableBox(atEnd) {
		t.Error("box overhanging segment end should remain drivable")
	}
}

func TestStraightRoadLanes(t *testing.T) {
	r := MustStraightRoad(3, 3.5, 0, 100)
	if got := r.Width(); got != 10.5 {
		t.Errorf("Width = %v", got)
	}
	if got := r.LaneCenter(0); got != 1.75 {
		t.Errorf("LaneCenter(0) = %v", got)
	}
	if got := r.LaneCenter(2); got != 8.75 {
		t.Errorf("LaneCenter(2) = %v", got)
	}
	for _, tt := range []struct {
		y      float64
		lane   int
		onRoad bool
	}{
		{1.75, 0, true},
		{3.6, 1, true},
		{10.5, 2, true}, // top edge maps into last lane
		{-0.5, 0, false},
		{11, 0, false},
	} {
		lane, ok := r.LaneAt(tt.y)
		if ok != tt.onRoad || (ok && lane != tt.lane) {
			t.Errorf("LaneAt(%v) = (%d, %v), want (%d, %v)", tt.y, lane, ok, tt.lane, tt.onRoad)
		}
	}
}

func TestStraightRoadBounds(t *testing.T) {
	r := MustStraightRoad(2, 3.5, -10, 100)
	min, max := r.Bounds()
	if min != geom.V(-10, 0) || max != geom.V(100, 7) {
		t.Errorf("Bounds = %v %v", min, max)
	}
}

func TestNewRingRoadValidation(t *testing.T) {
	if _, err := NewRingRoad(geom.V(0, 0), 20, 27); err != nil {
		t.Errorf("valid ring rejected: %v", err)
	}
	if _, err := NewRingRoad(geom.V(0, 0), -1, 10); err == nil {
		t.Error("negative inner radius accepted")
	}
	if _, err := NewRingRoad(geom.V(0, 0), 10, 10); err == nil {
		t.Error("zero-width ring accepted")
	}
}

func TestRingRoadDrivable(t *testing.T) {
	r, err := NewRingRoad(geom.V(0, 0), 20, 27)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Drivable(geom.V(23.5, 0)) {
		t.Error("mid-ring point should be drivable")
	}
	if r.Drivable(geom.V(0, 0)) {
		t.Error("centre island should not be drivable")
	}
	if r.Drivable(geom.V(30, 0)) {
		t.Error("outside ring should not be drivable")
	}
}

func TestRingRoadDrivableBox(t *testing.T) {
	r, _ := NewRingRoad(geom.V(0, 0), 20, 27)
	pos, heading := r.PoseAt(r.MidRadius(), 0)
	if !r.DrivableBox(geom.NewBox(pos, 4.7, 2.0, heading)) {
		t.Error("vehicle on centreline should be drivable")
	}
	if r.DrivableBox(geom.NewBox(geom.V(20, 0), 4.7, 4.0, math.Pi/2)) {
		t.Error("vehicle straddling inner edge should not be drivable")
	}
}

func TestRingRoadPoseAt(t *testing.T) {
	r, _ := NewRingRoad(geom.V(5, 5), 20, 27)
	pos, heading := r.PoseAt(23.5, 0)
	if !vecAlmostEq(pos, geom.V(28.5, 5), 1e-9) {
		t.Errorf("PoseAt pos = %v", pos)
	}
	if math.Abs(heading-math.Pi/2) > 1e-9 {
		t.Errorf("PoseAt heading = %v, want π/2 (ccw tangent)", heading)
	}
	if got := r.AngleOf(pos); math.Abs(got) > 1e-9 {
		t.Errorf("AngleOf = %v, want 0", got)
	}
}

func TestRingRoadBounds(t *testing.T) {
	r, _ := NewRingRoad(geom.V(1, 2), 20, 27)
	min, max := r.Bounds()
	if min != geom.V(-26, -25) || max != geom.V(28, 29) {
		t.Errorf("Bounds = %v %v", min, max)
	}
}

// Driving along the tangent of the ring keeps the vehicle on the ring.
func TestRingRoadTangentTravelStaysDrivable(t *testing.T) {
	r, _ := NewRingRoad(geom.V(0, 0), 20, 27)
	for angle := 0.0; angle < 2*math.Pi; angle += 0.1 {
		pos, _ := r.PoseAt(r.MidRadius(), angle)
		if !r.Drivable(pos) {
			t.Fatalf("centreline at angle %v not drivable: %v", angle, pos)
		}
	}
}

func vecAlmostEq(a, b geom.Vec2, tol float64) bool {
	return math.Abs(a.X-b.X) <= tol && math.Abs(a.Y-b.Y) <= tol
}
