// Package roadmap models the drivable areas 𝓜 that constrain the ego
// vehicle's escape routes. Two map families cover every scenario in the
// paper's evaluation: straight multi-lane roads (the five NHTSA typologies)
// and a ring road (the roundabout extension used with the RIP agent).
package roadmap

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Map exposes drivability queries for reachability analysis and planning.
type Map interface {
	// Drivable reports whether a point lies on drivable surface.
	Drivable(p geom.Vec2) bool
	// DrivableBox reports whether a vehicle footprint is fully on drivable
	// surface. Implementations may approximate with corner+centre checks.
	DrivableBox(b geom.Box) bool
	// Bounds returns an axis-aligned bounding box of the drivable area.
	Bounds() (min, max geom.Vec2)
}

// PreparedMap is implemented by map families that can judge a prepared
// footprint from its cached geometry (AABB, corners) without recomputing
// it. The reach-tube hot path type-asserts once per tube and falls back to
// DrivableBox for maps that do not implement it. DrivablePrepared must
// decide exactly as DrivableBox on the underlying box.
type PreparedMap interface {
	Map
	DrivablePrepared(b *geom.PreparedBox) bool
}

// StraightRoad is a straight multi-lane road running along the +x axis.
// Lane 0 occupies y ∈ [0, LaneWidth); lane i spans [i·W, (i+1)·W).
type StraightRoad struct {
	NumLanes  int
	LaneWidth float64
	XMin      float64
	XMax      float64
}

var _ PreparedMap = (*StraightRoad)(nil)

// NewStraightRoad constructs a straight road. It panics only via Validate at
// construction call sites; use Validate to check parameters.
func NewStraightRoad(lanes int, laneWidth, xMin, xMax float64) (*StraightRoad, error) {
	r := &StraightRoad{NumLanes: lanes, LaneWidth: laneWidth, XMin: xMin, XMax: xMax}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// MustStraightRoad is NewStraightRoad that panics on invalid parameters; for
// use in tests and scenario tables with known-good constants.
func MustStraightRoad(lanes int, laneWidth, xMin, xMax float64) *StraightRoad {
	r, err := NewStraightRoad(lanes, laneWidth, xMin, xMax)
	if err != nil {
		panic(err)
	}
	return r
}

// Validate reports whether the road is well-formed.
func (r *StraightRoad) Validate() error {
	switch {
	case r.NumLanes < 1:
		return fmt.Errorf("roadmap: need at least one lane, got %d", r.NumLanes)
	case r.LaneWidth <= 0:
		return fmt.Errorf("roadmap: lane width must be positive, got %v", r.LaneWidth)
	case r.XMax <= r.XMin:
		return fmt.Errorf("roadmap: empty extent [%v, %v]", r.XMin, r.XMax)
	}
	return nil
}

// Width returns the total road width.
func (r *StraightRoad) Width() float64 { return float64(r.NumLanes) * r.LaneWidth }

// Drivable implements Map.
func (r *StraightRoad) Drivable(p geom.Vec2) bool {
	return p.X >= r.XMin && p.X <= r.XMax && p.Y >= 0 && p.Y <= r.Width()
}

// DrivableBox implements Map. For a straight road the footprint is drivable
// iff its AABB lies inside the road rectangle; we relax the longitudinal
// bounds so vehicles may exit at the far end of the modelled segment.
func (r *StraightRoad) DrivableBox(b geom.Box) bool {
	min, max := b.AABB()
	return min.Y >= 0 && max.Y <= r.Width() && max.X >= r.XMin && min.X <= r.XMax
}

// DrivablePrepared implements PreparedMap using the cached AABB.
func (r *StraightRoad) DrivablePrepared(b *geom.PreparedBox) bool {
	return b.Min.Y >= 0 && b.Max.Y <= r.Width() && b.Max.X >= r.XMin && b.Min.X <= r.XMax
}

// Bounds implements Map.
func (r *StraightRoad) Bounds() (geom.Vec2, geom.Vec2) {
	return geom.V(r.XMin, 0), geom.V(r.XMax, r.Width())
}

// LaneCenter returns the y-coordinate of the centre of lane i.
func (r *StraightRoad) LaneCenter(i int) float64 {
	return (float64(i) + 0.5) * r.LaneWidth
}

// LaneAt returns the lane index containing y, and whether y is on the road.
func (r *StraightRoad) LaneAt(y float64) (int, bool) {
	if y < 0 || y > r.Width() {
		return 0, false
	}
	i := int(y / r.LaneWidth)
	if i >= r.NumLanes {
		i = r.NumLanes - 1
	}
	return i, true
}

// RingRoad is an annular drivable region: the roundabout typology used in the
// paper's §V-C generalisation study. Headings follow the counter-clockwise
// tangent direction.
type RingRoad struct {
	Center geom.Vec2
	InnerR float64
	OuterR float64
}

var _ PreparedMap = (*RingRoad)(nil)

// NewRingRoad constructs a ring road.
func NewRingRoad(center geom.Vec2, innerR, outerR float64) (*RingRoad, error) {
	if innerR < 0 || outerR <= innerR {
		return nil, fmt.Errorf("roadmap: invalid ring radii inner=%v outer=%v", innerR, outerR)
	}
	return &RingRoad{Center: center, InnerR: innerR, OuterR: outerR}, nil
}

// Drivable implements Map.
func (r *RingRoad) Drivable(p geom.Vec2) bool {
	d := p.Dist(r.Center)
	return d >= r.InnerR && d <= r.OuterR
}

// DrivableBox implements Map, approximated by checking the footprint centre
// and four corners.
func (r *RingRoad) DrivableBox(b geom.Box) bool {
	if !r.Drivable(b.Center) {
		return false
	}
	for _, c := range b.Corners() {
		if !r.Drivable(c) {
			return false
		}
	}
	return true
}

// DrivablePrepared implements PreparedMap, deriving the corners from the
// cached axes (they are not stored in the prepared box).
func (r *RingRoad) DrivablePrepared(b *geom.PreparedBox) bool {
	if !r.Drivable(b.Box.Center) {
		return false
	}
	var cs [4]geom.Vec2
	b.CornersInto(&cs)
	for _, c := range cs {
		if !r.Drivable(c) {
			return false
		}
	}
	return true
}

// Bounds implements Map.
func (r *RingRoad) Bounds() (geom.Vec2, geom.Vec2) {
	return r.Center.Sub(geom.V(r.OuterR, r.OuterR)), r.Center.Add(geom.V(r.OuterR, r.OuterR))
}

// MidRadius returns the radius of the centreline of the ring.
func (r *RingRoad) MidRadius() float64 { return (r.InnerR + r.OuterR) / 2 }

// PoseAt returns the position and tangent heading at the given polar angle on
// a circle of the given radius (counter-clockwise travel).
func (r *RingRoad) PoseAt(radius, angle float64) (geom.Vec2, float64) {
	s, c := math.Sincos(angle)
	pos := r.Center.Add(geom.V(radius*c, radius*s))
	return pos, geom.NormalizeAngle(angle + math.Pi/2)
}

// AngleOf returns the polar angle of p around the ring centre.
func (r *RingRoad) AngleOf(p geom.Vec2) float64 { return p.Sub(r.Center).Angle() }
