package vehicle

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero wheelbase", func(p *Params) { p.WheelBase = 0 }},
		{"negative length", func(p *Params) { p.Length = -1 }},
		{"zero width", func(p *Params) { p.Width = 0 }},
		{"zero max speed", func(p *Params) { p.MaxSpeed = 0 }},
		{"negative max accel", func(p *Params) { p.MaxAccel = -1 }},
		{"positive max brake", func(p *Params) { p.MaxBrake = 1 }},
		{"zero max steer", func(p *Params) { p.MaxSteer = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestStepStraightLine(t *testing.T) {
	p := DefaultParams()
	s := State{Pos: geom.V(0, 0), Heading: 0, Speed: 10}
	s2 := p.Step(s, Control{}, 1.0)
	if math.Abs(s2.Pos.X-10) > 1e-9 || math.Abs(s2.Pos.Y) > 1e-9 {
		t.Errorf("straight step = %v", s2)
	}
	if s2.Speed != 10 || s2.Heading != 0 {
		t.Errorf("speed/heading changed: %v", s2)
	}
}

func TestStepAcceleration(t *testing.T) {
	p := DefaultParams()
	s := State{Speed: 0}
	s2 := p.Step(s, Control{Accel: 2}, 1.0)
	if s2.Speed != 2 {
		t.Errorf("speed = %v, want 2", s2.Speed)
	}
	// Midpoint integration: distance = avg speed * dt = 1.
	if math.Abs(s2.Pos.X-1) > 1e-9 {
		t.Errorf("distance = %v, want 1", s2.Pos.X)
	}
}

func TestStepSpeedClampedAtZero(t *testing.T) {
	p := DefaultParams()
	s := State{Speed: 1}
	s2 := p.Step(s, Control{Accel: p.MaxBrake}, 1.0)
	if s2.Speed != 0 {
		t.Errorf("speed = %v, want 0 (no reversing)", s2.Speed)
	}
}

func TestStepSpeedClampedAtMax(t *testing.T) {
	p := DefaultParams()
	s := State{Speed: p.MaxSpeed}
	s2 := p.Step(s, Control{Accel: p.MaxAccel}, 1.0)
	if s2.Speed != p.MaxSpeed {
		t.Errorf("speed = %v, want %v", s2.Speed, p.MaxSpeed)
	}
}

func TestStepControlClamped(t *testing.T) {
	p := DefaultParams()
	u := p.ClampControl(Control{Accel: 100, Steer: -100})
	if u.Accel != p.MaxAccel || u.Steer != -p.MaxSteer {
		t.Errorf("ClampControl = %+v", u)
	}
}

func TestStepTurning(t *testing.T) {
	p := DefaultParams()
	s := State{Speed: 10}
	left := p.Step(s, Control{Steer: 0.3}, 0.5)
	right := p.Step(s, Control{Steer: -0.3}, 0.5)
	if left.Heading <= 0 {
		t.Errorf("left steer should increase heading, got %v", left.Heading)
	}
	if right.Heading >= 0 {
		t.Errorf("right steer should decrease heading, got %v", right.Heading)
	}
	if math.Abs(left.Heading+right.Heading) > 1e-12 {
		t.Errorf("turning should be symmetric: %v vs %v", left.Heading, right.Heading)
	}
	if left.Pos.Y <= 0 {
		t.Errorf("left turn should move +y, got %v", left.Pos)
	}
}

func TestStepZeroSpeedNoTurn(t *testing.T) {
	p := DefaultParams()
	s := State{Speed: 0}
	s2 := p.Step(s, Control{Steer: p.MaxSteer}, 1.0)
	if s2.Heading != 0 || s2.Pos != (geom.Vec2{}) {
		t.Errorf("stationary vehicle must not move or rotate: %v", s2)
	}
}

func TestCircularMotionRadius(t *testing.T) {
	// Under constant steer and speed, the bicycle model traces a circle of
	// radius R = L / tan(φ). Integrate a full revolution and verify the path
	// returns near the start.
	p := DefaultParams()
	const (
		speed = 5.0
		steer = 0.2
		dt    = 0.01
	)
	radius := p.WheelBase / math.Tan(steer)
	period := 2 * math.Pi * radius / speed
	s := State{Speed: speed}
	steps := int(period / dt)
	for i := 0; i < steps; i++ {
		s = p.Step(s, Control{Steer: steer}, dt)
	}
	if s.Pos.Norm() > 0.5 {
		t.Errorf("after one revolution pos = %v (radius %v), want near origin", s.Pos, radius)
	}
}

func TestFootprint(t *testing.T) {
	p := DefaultParams()
	fp := p.Footprint(State{Pos: geom.V(3, 4), Heading: 1})
	if fp.Center != geom.V(3, 4) || fp.Heading != 1 {
		t.Errorf("footprint = %+v", fp)
	}
	if fp.HalfLen != p.Length/2 || fp.HalfWid != p.Width/2 {
		t.Errorf("footprint extents = %+v", fp)
	}
}

func TestStoppingDistance(t *testing.T) {
	p := DefaultParams()
	// v²/(2·8) at 20 m/s = 25 m.
	if got := p.StoppingDistance(20); math.Abs(got-25) > 1e-9 {
		t.Errorf("StoppingDistance(20) = %v, want 25", got)
	}
	if got := p.StoppingDistance(0); got != 0 {
		t.Errorf("StoppingDistance(0) = %v, want 0", got)
	}
	p.MaxBrake = 0
	if got := p.StoppingDistance(10); !math.IsInf(got, 1) {
		t.Errorf("StoppingDistance with no brakes = %v, want +Inf", got)
	}
}

func TestVelocity(t *testing.T) {
	s := State{Heading: math.Pi / 2, Speed: 3}
	v := s.Velocity()
	if math.Abs(v.X) > 1e-12 || math.Abs(v.Y-3) > 1e-12 {
		t.Errorf("Velocity = %v", v)
	}
}

// Property: speed always stays within [0, MaxSpeed] and heading within
// (-π, π] for any bounded control sequence.
func TestStepInvariants(t *testing.T) {
	p := DefaultParams()
	f := func(accel, steer, v0, heading float64) bool {
		if anyNaNInf(accel, steer, v0, heading) {
			return true
		}
		s := State{
			Heading: geom.NormalizeAngle(heading),
			Speed:   geom.Clamp(math.Abs(math.Mod(v0, 40)), 0, p.MaxSpeed),
		}
		for i := 0; i < 20; i++ {
			s = p.Step(s, Control{Accel: math.Mod(accel, 20), Steer: math.Mod(steer, 2)}, 0.1)
			if s.Speed < 0 || s.Speed > p.MaxSpeed {
				return false
			}
			if s.Heading <= -math.Pi || s.Heading > math.Pi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: displacement per step never exceeds MaxSpeed·dt.
func TestStepDisplacementBound(t *testing.T) {
	p := DefaultParams()
	f := func(accel, steer, v0 float64) bool {
		if anyNaNInf(accel, steer, v0) {
			return true
		}
		dt := 0.1
		s := State{Speed: geom.Clamp(math.Abs(math.Mod(v0, 40)), 0, p.MaxSpeed)}
		s2 := p.Step(s, Control{Accel: math.Mod(accel, 20), Steer: math.Mod(steer, 2)}, dt)
		return s2.Pos.Sub(s.Pos).Norm() <= p.MaxSpeed*dt+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func anyNaNInf(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}

func TestSteerLimit(t *testing.T) {
	p := DefaultParams()
	// At rest and at crawl the mechanical limit applies.
	if got := p.SteerLimit(0); got != p.MaxSteer {
		t.Errorf("SteerLimit(0) = %v, want %v", got, p.MaxSteer)
	}
	if got := p.SteerLimit(2); got != p.MaxSteer {
		t.Errorf("SteerLimit(2) = %v, want mechanical limit", got)
	}
	// At highway speed the lateral-acceleration cap dominates and shrinks
	// monotonically with speed.
	hi := p.SteerLimit(15)
	vhi := p.SteerLimit(30)
	if hi >= p.MaxSteer {
		t.Errorf("SteerLimit(15) = %v, want < %v", hi, p.MaxSteer)
	}
	if vhi >= hi {
		t.Errorf("steer limit must shrink with speed: %v !< %v", vhi, hi)
	}
	// atan(L·a_lat/v²) at v=15: atan(2.8·6/225).
	want := math.Atan(2.8 * 6 / 225)
	if math.Abs(hi-want) > 1e-12 {
		t.Errorf("SteerLimit(15) = %v, want %v", hi, want)
	}
	// Disabled cap.
	p.MaxLatAccel = 0
	if got := p.SteerLimit(30); got != p.MaxSteer {
		t.Errorf("uncapped SteerLimit = %v", got)
	}
}

func TestStepRespectsSteerLimitAtSpeed(t *testing.T) {
	p := DefaultParams()
	fast := State{Speed: 25}
	slow := State{Speed: 5}
	uf := p.Step(fast, Control{Steer: p.MaxSteer}, 0.1)
	us := p.Step(slow, Control{Steer: p.MaxSteer}, 0.1)
	// Yaw rate = v/L·tan(φ_eff): the fast vehicle's effective steer is so
	// much smaller that its heading change stays below the slow vehicle's.
	if uf.Heading >= us.Heading {
		t.Errorf("fast heading change %v should be < slow %v (lat-accel cap)", uf.Heading, us.Heading)
	}
}
