// Package vehicle implements the kinematic bicycle model used by iPrism for
// reachability analysis and by the simulator for vehicle dynamics (Kong et
// al., "Kinematic and dynamic vehicle models for autonomous driving control
// design", IV 2015 — reference [42] of the paper).
package vehicle

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// State is the kinematic state of a vehicle: rear-axle reference position,
// heading θ (radians), and forward speed v (m/s). It matches the paper's
// x_t^ego = [x, y, θ, v].
type State struct {
	Pos     geom.Vec2
	Heading float64
	Speed   float64
}

// Control is a bicycle-model control input u = (a, φ): longitudinal
// acceleration (m/s²) and front-wheel steering angle (radians).
type Control struct {
	Accel float64
	Steer float64
}

// Params describes a vehicle's physical limits and footprint. The defaults
// follow the bicycle-model parameterisation of Jha et al. [46] / typical
// CARLA sedan dimensions.
type Params struct {
	WheelBase float64 // distance between axles (m)
	Length    float64 // footprint length (m)
	Width     float64 // footprint width (m)
	MaxSpeed  float64 // forward speed cap (m/s)
	MaxAccel  float64 // a_max ≥ 0 (m/s²)
	MaxBrake  float64 // a_min ≤ 0 (m/s²)
	MaxSteer  float64 // |φ| cap (radians)

	// MaxLatAccel caps lateral (centripetal) acceleration, limiting the
	// usable steering angle at speed: tyres cannot hold full steering lock
	// at highway speed. Zero disables the cap.
	MaxLatAccel float64
}

// DefaultParams returns the sedan parameters used throughout the evaluation.
func DefaultParams() Params {
	return Params{
		WheelBase: 2.8,
		Length:    4.7,
		Width:     2.0,
		MaxSpeed:  30.0,
		MaxAccel:  4.0,
		MaxBrake:  -8.0,
		MaxSteer:  0.6,

		MaxLatAccel: 6.0,
	}
}

// Validate reports whether the parameters are physically meaningful.
func (p Params) Validate() error {
	switch {
	case p.WheelBase <= 0:
		return fmt.Errorf("vehicle: wheel base must be positive, got %v", p.WheelBase)
	case p.Length <= 0 || p.Width <= 0:
		return fmt.Errorf("vehicle: footprint %vx%v must be positive", p.Length, p.Width)
	case p.MaxSpeed <= 0:
		return fmt.Errorf("vehicle: max speed must be positive, got %v", p.MaxSpeed)
	case p.MaxAccel < 0:
		return fmt.Errorf("vehicle: max accel must be non-negative, got %v", p.MaxAccel)
	case p.MaxBrake > 0:
		return fmt.Errorf("vehicle: max brake must be non-positive, got %v", p.MaxBrake)
	case p.MaxSteer <= 0:
		return fmt.Errorf("vehicle: max steer must be positive, got %v", p.MaxSteer)
	case p.MaxLatAccel < 0:
		return fmt.Errorf("vehicle: max lateral accel must be non-negative, got %v", p.MaxLatAccel)
	}
	return nil
}

// SteerLimit returns the largest usable steering magnitude at speed v: the
// smaller of the mechanical limit and the angle at which centripetal
// acceleration v²·tan(φ)/L reaches MaxLatAccel.
func (p Params) SteerLimit(v float64) float64 {
	if p.MaxLatAccel <= 0 || v <= 0 {
		return p.MaxSteer
	}
	limit := math.Atan(p.MaxLatAccel * p.WheelBase / (v * v))
	return math.Min(p.MaxSteer, limit)
}

// ClampControl restricts a control input to the vehicle's limits.
func (p Params) ClampControl(u Control) Control {
	return Control{
		Accel: geom.Clamp(u.Accel, p.MaxBrake, p.MaxAccel),
		Steer: geom.Clamp(u.Steer, -p.MaxSteer, p.MaxSteer),
	}
}

// Step advances a state by dt seconds under control u using the kinematic
// bicycle model:
//
//	ẋ = v cos θ,  ẏ = v sin θ,  θ̇ = (v / L) tan φ,  v̇ = a
//
// Controls are clamped to the vehicle limits and speed is clamped to
// [0, MaxSpeed]: vehicles do not reverse in any iPrism scenario.
func (p Params) Step(s State, u Control, dt float64) State {
	u = p.ClampControl(u)
	// Enforce the lateral-acceleration cap at the current speed.
	if lim := p.SteerLimit(s.Speed); u.Steer > lim {
		u.Steer = lim
	} else if u.Steer < -lim {
		u.Steer = -lim
	}
	// Integrate speed first with midpoint speed for position (semi-implicit,
	// stable at the 0.1 s steps used by the simulator).
	v0 := s.Speed
	v1 := geom.Clamp(v0+u.Accel*dt, 0, p.MaxSpeed)
	vMid := (v0 + v1) / 2
	yawRate := 0.0
	if p.WheelBase > 0 {
		yawRate = vMid / p.WheelBase * math.Tan(u.Steer)
	}
	heading := geom.NormalizeAngle(s.Heading + yawRate*dt)
	// Advance position along the average heading for second-order accuracy.
	avgHeading := geom.NormalizeAngle(s.Heading + yawRate*dt/2)
	sin, cos := math.Sincos(avgHeading)
	return State{
		Pos:     s.Pos.Add(geom.V(vMid*cos*dt, vMid*sin*dt)),
		Heading: heading,
		Speed:   v1,
	}
}

// StepPath is Step for the reach-tube hot path. The caller supplies
// tan(u.Steer) precomputed once per control (the control set is fixed per
// tube, while Step recomputes the tangent per sub-step), u already within
// the vehicle limits (reach.Config.controls guarantees this), and *sinH,
// *cosH holding sincos(s.Heading); on return they hold sincos of the new
// heading. The speed-dependent steering cap is applied in tangent space:
// tan is monotonic on (-π/2, π/2), so clamping tan φ to tan(SteerLimit(v))
// = MaxLatAccel·L/v² selects the same effective yaw rate SteerLimit
// followed by tan would, without the atan/tan round-trip.
//
// Carrying the heading's sine and cosine lets the per-step trigonometry
// collapse to one small-angle sincos of the yaw increment plus two planar
// rotations (for the position update's average heading and for the new
// heading), instead of two full Sincos calls. Positions agree with Step to
// ~1 ulp; the heading value itself is computed with the same arithmetic as
// Step.
func (p Params) StepPath(s State, u Control, tanSteer, dt float64, sinH, cosH *float64) State {
	if p.MaxLatAccel > 0 && s.Speed > 0 {
		if lim := p.MaxLatAccel * p.WheelBase / (s.Speed * s.Speed); tanSteer > lim {
			tanSteer = lim
		} else if tanSteer < -lim {
			tanSteer = -lim
		}
	}
	v0 := s.Speed
	v1 := geom.Clamp(v0+u.Accel*dt, 0, p.MaxSpeed)
	vMid := (v0 + v1) / 2
	yawRate := 0.0
	if p.WheelBase > 0 {
		yawRate = vMid / p.WheelBase * tanSteer
	}
	heading := geom.NormalizeAngle(s.Heading + yawRate*dt)
	// Rotate the carried (sin, cos) by half the yaw increment twice: once to
	// the average heading the position update integrates along, once more to
	// the end-of-step heading.
	sh, ch := sincosSmall(yawRate * dt / 2)
	s0, c0 := *sinH, *cosH
	sinAvg := s0*ch + c0*sh
	cosAvg := c0*ch - s0*sh
	*sinH = sinAvg*ch + cosAvg*sh
	*cosH = cosAvg*ch - sinAvg*sh
	return State{
		Pos:     s.Pos.Add(geom.V(vMid*cosAvg*dt, vMid*sinAvg*dt)),
		Heading: heading,
		Speed:   v1,
	}
}

// sincosSmall evaluates sincos for the small per-sub-step yaw increments of
// StepPath (|x| ≲ 0.3 rad for any physical parameterisation) with Taylor
// polynomials accurate to < 1 ulp over |x| ≤ 0.35, falling back to
// math.Sincos outside that range.
func sincosSmall(x float64) (sin, cos float64) {
	if x > 0.35 || x < -0.35 {
		return math.Sincos(x)
	}
	x2 := x * x
	sin = x * (1 + x2*(-1.0/6 + x2*(1.0/120 + x2*(-1.0/5040 + x2*(1.0/362880 + x2*(-1.0/39916800))))))
	cos = 1 + x2*(-1.0/2 + x2*(1.0/24 + x2*(-1.0/720 + x2*(1.0/40320 + x2*(-1.0/3628800 + x2*(1.0/479001600))))))
	return sin, cos
}

// Footprint returns the oriented bounding box occupied by a vehicle with
// parameters p at state s. The reference point is the footprint centre.
func (p Params) Footprint(s State) geom.Box {
	return geom.NewBox(s.Pos, p.Length, p.Width, s.Heading)
}

// StoppingDistance returns the distance needed to brake from speed v to rest
// at maximal braking.
func (p Params) StoppingDistance(v float64) float64 {
	if p.MaxBrake >= 0 {
		return math.Inf(1)
	}
	return v * v / (2 * -p.MaxBrake)
}

// Velocity returns the velocity vector of the state.
func (s State) Velocity() geom.Vec2 {
	sin, cos := math.Sincos(s.Heading)
	return geom.V(s.Speed*cos, s.Speed*sin)
}

// String implements fmt.Stringer.
func (s State) String() string {
	return fmt.Sprintf("pos=%v θ=%.3f v=%.2f", s.Pos, s.Heading, s.Speed)
}
