package metrics

import (
	"math"
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/vehicle"
)

func testScene(ego vehicle.State, actors []*actor.Actor) Scene {
	s := Scene{
		Map:       roadmap.MustStraightRoad(2, 3.5, -100, 1000),
		Ego:       ego,
		EgoParams: vehicle.DefaultParams(),
		Actors:    actors,
		Horizon:   3.0,
		Dt:        0.5,
	}
	s.Trajs = actor.PredictAll(actors, s.steps(), s.Dt)
	return s
}

func egoAt(x, y, speed float64) vehicle.State {
	return vehicle.State{Pos: geom.V(x, y), Speed: speed}
}

func TestTTCNoActors(t *testing.T) {
	s := testScene(egoAt(0, 1.75, 10), nil)
	if got := TTC(s); !math.IsInf(got, 1) {
		t.Errorf("TTC with no actors = %v, want +Inf", got)
	}
	if got := DistCIPA(s); !math.IsInf(got, 1) {
		t.Errorf("DistCIPA with no actors = %v, want +Inf", got)
	}
}

func TestTTCLeadVehicle(t *testing.T) {
	// Lead vehicle 34.7 m ahead centre-to-centre (30 m gap) in the same
	// lane, 5 m/s slower: TTC = 30 / 5 = 6 s.
	lead := actor.NewVehicle(1, vehicle.State{Pos: geom.V(34.7, 1.75), Speed: 5})
	s := testScene(egoAt(0, 1.75, 10), []*actor.Actor{lead})
	got := TTC(s)
	if math.Abs(got-6) > 0.1 {
		t.Errorf("TTC = %v, want ~6", got)
	}
	if gap := DistCIPA(s); math.Abs(gap-30) > 1e-9 {
		t.Errorf("DistCIPA = %v, want 30", gap)
	}
}

func TestTTCIgnoresFasterLead(t *testing.T) {
	// A lead pulling away is in-path but not closing: TTC = +Inf.
	lead := actor.NewVehicle(1, vehicle.State{Pos: geom.V(20, 1.75), Speed: 15})
	s := testScene(egoAt(0, 1.75, 10), []*actor.Actor{lead})
	if got := TTC(s); !math.IsInf(got, 1) {
		t.Errorf("TTC of receding lead = %v, want +Inf", got)
	}
	// But Dist. CIPA still reports the gap.
	if got := DistCIPA(s); math.IsInf(got, 1) {
		t.Errorf("DistCIPA of receding lead = %v, want finite", got)
	}
}

func TestTTCBlindToAdjacentLane(t *testing.T) {
	// An actor cruising in the adjacent lane, parallel to the ego: paths
	// never cross, so TTC and Dist. CIPA are blind to it — the ghost cut-in
	// blindness of Table II.
	ghost := actor.NewVehicle(1, vehicle.State{Pos: geom.V(-10, 5.25), Speed: 18})
	s := testScene(egoAt(0, 1.75, 10), []*actor.Actor{ghost})
	if got := TTC(s); !math.IsInf(got, 1) {
		t.Errorf("TTC of parallel adjacent actor = %v, want +Inf", got)
	}
	if got := DistCIPA(s); !math.IsInf(got, 1) {
		t.Errorf("DistCIPA of parallel adjacent actor = %v, want +Inf", got)
	}
}

func TestTTCBlindToRearActor(t *testing.T) {
	// Rear-end typology: an actor closing from directly behind is never
	// "in path" for forward-looking metrics.
	rear := actor.NewVehicle(1, vehicle.State{Pos: geom.V(-15, 1.75), Speed: 20})
	s := testScene(egoAt(0, 1.75, 8), []*actor.Actor{rear})
	if got := TTC(s); !math.IsInf(got, 1) {
		t.Errorf("TTC of rear actor = %v, want +Inf", got)
	}
}

func TestTTCSeesCuttingInActor(t *testing.T) {
	// Once the adjacent actor begins yawing into the ego lane, its CVTR
	// prediction crosses the ego path and TTC becomes finite.
	cutter := actor.NewVehicle(1, vehicle.State{
		Pos: geom.V(12, 5.25), Speed: 8, Heading: -0.35,
	})
	cutter.YawRate = 0 // heading already towards ego lane
	s := testScene(egoAt(0, 1.75, 12), []*actor.Actor{cutter})
	if got := TTC(s); math.IsInf(got, 1) {
		t.Error("TTC should see an actor whose prediction crosses the ego path")
	}
}

func TestInPathActorsMultiple(t *testing.T) {
	near := actor.NewVehicle(1, vehicle.State{Pos: geom.V(15, 1.75), Speed: 5})
	far := actor.NewVehicle(2, vehicle.State{Pos: geom.V(40, 1.75), Speed: 5})
	s := testScene(egoAt(0, 1.75, 10), []*actor.Actor{near, far})
	ips := InPathActors(s)
	if len(ips) != 2 {
		t.Fatalf("in-path count = %d, want 2", len(ips))
	}
	if got := DistCIPA(s); math.Abs(got-(15-4.7)) > 1e-9 {
		t.Errorf("DistCIPA = %v, want %v (nearest)", got, 15-4.7)
	}
}

func TestInPathGapNonNegative(t *testing.T) {
	overlapping := actor.NewVehicle(1, vehicle.State{Pos: geom.V(4, 1.75), Speed: 0})
	s := testScene(egoAt(0, 1.75, 10), []*actor.Actor{overlapping})
	for _, ip := range InPathActors(s) {
		if ip.Dist < 0 {
			t.Errorf("gap = %v, want >= 0", ip.Dist)
		}
	}
}

func TestLTFMA(t *testing.T) {
	tests := []struct {
		name     string
		risk     []bool
		accident int
		want     float64
	}{
		{"never risky", []bool{false, false, false}, 2, 0},
		{"risky throughout", []bool{true, true, true}, 2, 0.3},
		{"risk starts midway", []bool{false, true, true}, 2, 0.2},
		{"flicker resets count", []bool{true, false, true}, 2, 0.1},
		{"accident index past end clamps", []bool{true, true}, 5, 0.2},
		{"risk after accident ignored", []bool{false, true, false, true}, 1, 0.1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := LTFMA(tt.risk, tt.accident, 0.1); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("LTFMA = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestThresholds(t *testing.T) {
	th := DefaultThresholds()
	if !th.TTCRisk(1.0) || th.TTCRisk(5.0) || th.TTCRisk(math.Inf(1)) {
		t.Error("TTCRisk misbehaves")
	}
	if !th.DistCIPARisk(5) || th.DistCIPARisk(50) || th.DistCIPARisk(math.Inf(1)) {
		t.Error("DistCIPARisk misbehaves")
	}
	if !th.STIRisk(0.2) || th.STIRisk(0.0) {
		t.Error("STIRisk misbehaves")
	}
	if !th.PKLRisk(0.5) || th.PKLRisk(0.01) {
		t.Error("PKLRisk misbehaves")
	}
}

func TestBoolSeries(t *testing.T) {
	th := DefaultThresholds()
	got := BoolSeries([]float64{0.5, 5.0}, th.TTCRisk)
	if !got[0] || got[1] {
		t.Errorf("BoolSeries = %v", got)
	}
}

func TestPKLDistributionSumsToOne(t *testing.T) {
	m := DefaultPKLModel()
	lead := actor.NewVehicle(1, vehicle.State{Pos: geom.V(15, 1.75), Speed: 2})
	s := testScene(egoAt(0, 1.75, 10), []*actor.Actor{lead})
	p := m.Distribution(CandidateFeatures(s, -1, false))
	sum := 0.0
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Errorf("probability out of range: %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("distribution sums to %v", sum)
	}
}

func TestPKLZeroWithoutActors(t *testing.T) {
	m := DefaultPKLModel()
	s := testScene(egoAt(0, 1.75, 10), nil)
	if got := m.PKLCombined(s); got != 0 {
		t.Errorf("PKLCombined with no actors = %v, want 0", got)
	}
	if got := m.PKL(s, 0); got != 0 {
		t.Errorf("PKL with bad index = %v, want 0", got)
	}
}

func TestPKLPositiveForBlockingActor(t *testing.T) {
	m := DefaultPKLModel()
	lead := actor.NewVehicle(1, vehicle.State{Pos: geom.V(12, 1.75), Speed: 0})
	s := testScene(egoAt(0, 1.75, 10), []*actor.Actor{lead})
	if got := m.PKL(s, 0); got <= 0 {
		t.Errorf("PKL of blocking actor = %v, want > 0", got)
	}
	if got := m.PKLCombined(s); got <= 0 {
		t.Errorf("PKLCombined = %v, want > 0", got)
	}
}

func TestPKLSmallForIrrelevantActor(t *testing.T) {
	m := DefaultPKLModel()
	far := actor.NewVehicle(1, vehicle.State{Pos: geom.V(500, 5.25), Speed: 10})
	s := testScene(egoAt(0, 1.75, 10), []*actor.Actor{far})
	blocking := actor.NewVehicle(1, vehicle.State{Pos: geom.V(12, 1.75), Speed: 0})
	s2 := testScene(egoAt(0, 1.75, 10), []*actor.Actor{blocking})
	if m.PKL(s, 0) >= m.PKL(s2, 0) {
		t.Errorf("distant actor PKL %v should be < blocking actor PKL %v",
			m.PKL(s, 0), m.PKL(s2, 0))
	}
}

func TestPKLFitImprovesLikelihood(t *testing.T) {
	// Build synthetic demonstrations: the demonstrator always picks the
	// candidate with the lowest collision+proximity features.
	lead := actor.NewVehicle(1, vehicle.State{Pos: geom.V(14, 1.75), Speed: 1})
	s := testScene(egoAt(0, 1.75, 10), []*actor.Actor{lead})
	f := CandidateFeatures(s, -1, false)
	best := 0
	bestScore := math.Inf(1)
	for c := 0; c < NumCandidates; c++ {
		score := 4*f[c][0] + f[c][1]
		if score < bestScore {
			best, bestScore = c, score
		}
	}
	samples := []PKLSample{{Features: f, Choice: best}}

	m := &PKLModel{Tau: 1}
	before := -math.Log(m.Distribution(f)[best])
	nll, err := m.Fit(samples, 200, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if nll >= before {
		t.Errorf("fit NLL %v should improve on initial %v", nll, before)
	}
}

func TestPKLFitErrors(t *testing.T) {
	m := DefaultPKLModel()
	if _, err := m.Fit(nil, 10, 0.1); err == nil {
		t.Error("Fit with no samples should error")
	}
	bad := []PKLSample{{Choice: 99}}
	if _, err := m.Fit(bad, 10, 0.1); err == nil {
		t.Error("Fit with out-of-range choice should error")
	}
}

func TestPKLDivergentModelsDiffer(t *testing.T) {
	// Two models with different weights disagree on the same scene: the
	// mechanism behind PKL-All vs PKL-Holdout sensitivity.
	lead := actor.NewVehicle(1, vehicle.State{Pos: geom.V(14, 1.75), Speed: 2})
	s := testScene(egoAt(0, 1.75, 10), []*actor.Actor{lead})
	a := &PKLModel{W: [NumPlanFeatures]float64{5, 2, 0.5, 0.2, 2, 0.2}, Tau: 1}
	b := &PKLModel{W: [NumPlanFeatures]float64{0.5, 0.1, 2, 2, 2, 2}, Tau: 1}
	if math.Abs(a.PKL(s, 0)-b.PKL(s, 0)) < 1e-6 {
		t.Error("different weight vectors should yield different PKL")
	}
}

func TestSceneStepsDegenerate(t *testing.T) {
	s := Scene{Horizon: 0, Dt: 0.5}
	if got := s.steps(); got != 0 {
		t.Errorf("steps = %d, want 0", got)
	}
	s = Scene{Horizon: 3, Dt: 0}
	if got := s.steps(); got != 0 {
		t.Errorf("steps = %d, want 0", got)
	}
}

func TestKLProperties(t *testing.T) {
	var p, q [NumCandidates]float64
	for i := range p {
		p[i] = 1.0 / NumCandidates
		q[i] = 1.0 / NumCandidates
	}
	if got := kl(p, q); got != 0 {
		t.Errorf("KL of identical distributions = %v, want 0", got)
	}
	q[0], q[1] = 0.9, q[1]-0.9+1.0/NumCandidates
	// Renormalise roughly; KL must be positive for different distributions.
	if got := kl(p, q); got <= 0 {
		t.Errorf("KL of different distributions = %v, want > 0", got)
	}
}
