package metrics

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/vehicle"
)

// PKL (planner KL-divergence, Philion et al., reference [14]) measures how
// much an actor influences the ego's planning distribution: the KL
// divergence between the plan distribution computed without the actor and
// the distribution with it. A learned cost model scores a fixed set of
// candidate manoeuvres; the plan distribution is a softmax over costs.
//
// The cost model's weights are *fitted* to driving demonstrations, which is
// the property Table II probes with the PKL-All vs PKL-Holdout variants:
// a PKL model fitted without cut-in demonstrations misjudges cut-in risk.

// Candidate manoeuvres: 3 longitudinal × 3 lateral profiles.
const (
	numLong       = 3
	numLat        = 3
	NumCandidates = numLong * numLat
	// NumPlanFeatures is the dimension of the per-candidate feature vector.
	NumPlanFeatures = 6
)

// PlanFeatures holds one feature vector per candidate manoeuvre.
type PlanFeatures [NumCandidates][NumPlanFeatures]float64

// CandidateFeatures rolls each candidate manoeuvre forward with the bicycle
// model and extracts its features against the scene's actors. The skip
// argument removes one actor (the PKL counterfactual); pass -1 to keep all
// and len(Actors) >= 0. skipAll removes every actor.
func CandidateFeatures(s Scene, skip int, skipAll bool) PlanFeatures {
	var out PlanFeatures
	n := s.steps()
	if n == 0 {
		return out
	}
	longAccels := [numLong]float64{s.EgoParams.MaxBrake / 2, 0, s.EgoParams.MaxAccel / 2}
	latOffsets := [numLat]float64{-3.5, 0, 3.5}

	c := 0
	for _, a := range longAccels {
		for _, lat := range latOffsets {
			out[c] = rollout(s, a, lat, n, skip, skipAll)
			c++
		}
	}
	return out
}

// rollout simulates one candidate manoeuvre and extracts features:
//
//	f0: collision with any (kept) actor (0/1)
//	f1: proximity = exp(-minDist/5)
//	f2: negative progress (1 - forward displacement / ideal)
//	f3: lateral-change magnitude (|lat| / lane width)
//	f4: off-road fraction of the rollout
//	f5: terminal slowdown (1 - v_end / max(v0, ε))
func rollout(s Scene, accel, latOffset float64, n, skip int, skipAll bool) [NumPlanFeatures]float64 {
	var f [NumPlanFeatures]float64
	ego := s.Ego
	heading0 := ego.Heading
	lateral := geom.V(-math.Sin(heading0), math.Cos(heading0))
	targetPos := ego.Pos.Add(lateral.Scale(latOffset))
	// Steering gain toward the target lateral offset in the ego frame.
	minDist := math.Inf(1)
	offRoad := 0
	collided := false
	start := ego.Pos
	for t := 1; t <= n; t++ {
		// Lateral error in the initial-heading frame: only the component of
		// (target − pos) perpendicular to the initial heading matters.
		latErr := targetPos.Sub(ego.Pos).Dot(lateral)
		headingErr := geom.AngleDiff(heading0, ego.Heading)
		steer := geom.Clamp(0.15*latErr+0.8*headingErr, -s.EgoParams.MaxSteer, s.EgoParams.MaxSteer)
		ego = s.EgoParams.Step(ego, vehicle.Control{Accel: accel, Steer: steer}, s.Dt)
		fp := s.EgoParams.Footprint(ego)
		if s.Map != nil && !s.Map.DrivableBox(fp) {
			offRoad++
		}
		if skipAll {
			continue
		}
		for i, a := range s.Actors {
			if i == skip {
				continue
			}
			ab := a.FootprintAt(s.Trajs[i].StateAt(t))
			if fp.Intersects(ab) {
				collided = true
			}
			if d := fp.Center.Dist(ab.Center) - fp.BoundingRadius() - ab.BoundingRadius(); d < minDist {
				minDist = d
			}
		}
	}
	if collided {
		f[0] = 1
	}
	if !math.IsInf(minDist, 1) {
		if minDist < 0 {
			minDist = 0
		}
		f[1] = math.Exp(-minDist / 5)
	}
	ideal := s.Ego.Speed*s.Horizon + 0.5*math.Abs(accel)*s.Horizon*s.Horizon
	if ideal > 1 {
		progress := ego.Pos.Sub(start).Dot(geom.V(math.Cos(heading0), math.Sin(heading0)))
		f[2] = geom.Clamp(1-progress/ideal, 0, 1)
	}
	f[3] = math.Abs(latOffset) / 3.5
	f[4] = float64(offRoad) / float64(n)
	if v0 := math.Max(s.Ego.Speed, 1); v0 > 0 {
		f[5] = geom.Clamp(1-ego.Speed/v0, 0, 1)
	}
	return f
}

// PKLModel is the learned softmax cost model p(c) ∝ exp(-w·f_c / τ).
type PKLModel struct {
	W   [NumPlanFeatures]float64
	Tau float64
}

// DefaultPKLModel returns an untrained model with hand-set weights that
// penalise collisions and proximity; used as the optimisation starting
// point and in tests.
func DefaultPKLModel() *PKLModel {
	return &PKLModel{
		W:   [NumPlanFeatures]float64{4, 1, 0.5, 0.3, 2, 0.3},
		Tau: 1.0,
	}
}

// Distribution returns the plan distribution for the given features.
func (m *PKLModel) Distribution(f PlanFeatures) [NumCandidates]float64 {
	var logits [NumCandidates]float64
	maxLogit := math.Inf(-1)
	tau := m.Tau
	if tau <= 0 {
		tau = 1
	}
	for c := 0; c < NumCandidates; c++ {
		cost := 0.0
		for k := 0; k < NumPlanFeatures; k++ {
			cost += m.W[k] * f[c][k]
		}
		logits[c] = -cost / tau
		if logits[c] > maxLogit {
			maxLogit = logits[c]
		}
	}
	sum := 0.0
	var p [NumCandidates]float64
	for c := 0; c < NumCandidates; c++ {
		p[c] = math.Exp(logits[c] - maxLogit)
		sum += p[c]
	}
	for c := 0; c < NumCandidates; c++ {
		p[c] /= sum
	}
	return p
}

// PKL returns the planner KL-divergence attributable to actor index i:
// KL(p^{/i} ‖ p). Larger values mean the actor influences the plan more.
func (m *PKLModel) PKL(s Scene, i int) float64 {
	if i < 0 || i >= len(s.Actors) {
		return 0
	}
	with := m.Distribution(CandidateFeatures(s, -1, false))
	without := m.Distribution(CandidateFeatures(s, i, false))
	return kl(without, with)
}

// PKLCombined returns the KL divergence from removing every actor:
// KL(p^∅ ‖ p), the trace plotted in Fig. 4(f)–(j).
func (m *PKLModel) PKLCombined(s Scene) float64 {
	if len(s.Actors) == 0 {
		return 0
	}
	with := m.Distribution(CandidateFeatures(s, -1, false))
	without := m.Distribution(CandidateFeatures(s, -1, true))
	return kl(without, with)
}

func kl(p, q [NumCandidates]float64) float64 {
	const eps = 1e-12
	sum := 0.0
	for c := 0; c < NumCandidates; c++ {
		if p[c] <= eps {
			continue
		}
		sum += p[c] * math.Log(p[c]/math.Max(q[c], eps))
	}
	if sum < 0 {
		sum = 0
	}
	return sum
}

// PKLSample is one demonstration for fitting the cost model: the candidate
// features of a scene and the index of the manoeuvre the demonstrator (the
// baseline ADS) actually chose.
type PKLSample struct {
	Features PlanFeatures
	Choice   int
}

// Fit trains the model's weights by maximum likelihood (multinomial
// logistic regression via batch gradient descent). It returns the final
// average negative log-likelihood.
func (m *PKLModel) Fit(samples []PKLSample, epochs int, lr float64) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("metrics: no samples to fit PKL model")
	}
	for _, s := range samples {
		if s.Choice < 0 || s.Choice >= NumCandidates {
			return 0, fmt.Errorf("metrics: sample choice %d out of range", s.Choice)
		}
	}
	tau := m.Tau
	if tau <= 0 {
		tau = 1
		m.Tau = 1
	}
	nll := 0.0
	for e := 0; e < epochs; e++ {
		var grad [NumPlanFeatures]float64
		nll = 0
		for _, s := range samples {
			p := m.Distribution(s.Features)
			nll -= math.Log(math.Max(p[s.Choice], 1e-12))
			// ∂NLL/∂w_k = (f_choice,k − Σ_c p_c f_c,k) / τ
			for k := 0; k < NumPlanFeatures; k++ {
				expect := 0.0
				for c := 0; c < NumCandidates; c++ {
					expect += p[c] * s.Features[c][k]
				}
				grad[k] += (s.Features[s.Choice][k] - expect) / tau
			}
		}
		n := float64(len(samples))
		for k := 0; k < NumPlanFeatures; k++ {
			m.W[k] -= lr * grad[k] / n
		}
		nll /= n
	}
	return nll, nil
}
