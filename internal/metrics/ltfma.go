package metrics

import "math"

// LTFMA (Lead-Time-For-Mitigating-Accident, §V-A) counts the consecutive
// time steps with nonzero risk immediately preceding the accident and
// converts them to seconds. A metric that flags risk early and *keeps*
// flagging it until the accident earns a long lead time; a metric that
// flickers or fires late earns a short one.
//
// risk[i] must be the binarised risk signal at step i (true = risk flagged)
// covering steps 0..accidentStep. Steps after accidentStep are ignored.
func LTFMA(risk []bool, accidentStep int, dt float64) float64 {
	if accidentStep >= len(risk) {
		accidentStep = len(risk) - 1
	}
	count := 0
	for i := accidentStep; i >= 0; i-- {
		if !risk[i] {
			break
		}
		count++
	}
	return float64(count) * dt
}

// Thresholds binarise the raw metric values into the risk indicators used
// by LTFMA. Defaults follow common forward-collision-warning practice: TTC
// below 3 s, in-path gap below 15 m, any positive STI, PKL above a small
// divergence floor.
type Thresholds struct {
	TTC      float64 // risk when TTC < TTC threshold
	DistCIPA float64 // risk when gap < distance threshold
	STI      float64 // risk when STI > this
	PKL      float64 // risk when PKL > this
}

// DefaultThresholds returns the thresholds used in the evaluation.
func DefaultThresholds() Thresholds {
	return Thresholds{
		TTC:      3.0,
		DistCIPA: 15.0,
		STI:      0.05,
		PKL:      0.10,
	}
}

// TTCRisk binarises a TTC value.
func (t Thresholds) TTCRisk(ttc float64) bool {
	return !math.IsInf(ttc, 1) && ttc < t.TTC
}

// DistCIPARisk binarises a Dist. CIPA value.
func (t Thresholds) DistCIPARisk(d float64) bool {
	return !math.IsInf(d, 1) && d < t.DistCIPA
}

// STIRisk binarises an STI value.
func (t Thresholds) STIRisk(sti float64) bool { return sti > t.STI }

// PKLRisk binarises a PKL value.
func (t Thresholds) PKLRisk(pkl float64) bool { return pkl > t.PKL }

// BoolSeries applies a predicate to a raw metric trace.
func BoolSeries(values []float64, risky func(float64) bool) []bool {
	out := make([]bool, len(values))
	for i, v := range values {
		out[i] = risky(v)
	}
	return out
}
