package metrics

import (
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/vehicle"
)

func benchScene() Scene {
	actors := []*actor.Actor{
		actor.NewVehicle(1, vehicle.State{Pos: geom.V(25, 1.75), Speed: 6}),
		actor.NewVehicle(2, vehicle.State{Pos: geom.V(5, 5.25), Speed: 11}),
		actor.NewVehicle(3, vehicle.State{Pos: geom.V(-20, 1.75), Speed: 16}),
	}
	s := Scene{
		Map:       roadmap.MustStraightRoad(2, 3.5, -100, 1000),
		Ego:       vehicle.State{Pos: geom.V(0, 1.75), Speed: 12},
		EgoParams: vehicle.DefaultParams(),
		Actors:    actors,
		Horizon:   3,
		Dt:        0.5,
	}
	s.Trajs = actor.PredictAll(actors, s.steps(), s.Dt)
	return s
}

func BenchmarkTTC(b *testing.B) {
	s := benchScene()
	for i := 0; i < b.N; i++ {
		TTC(s)
	}
}

func BenchmarkPKLCombined(b *testing.B) {
	s := benchScene()
	m := DefaultPKLModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PKLCombined(s)
	}
}
