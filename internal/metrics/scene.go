// Package metrics implements the risk metrics iPrism is compared against in
// §IV-C / Table II — time-to-collision (TTC), distance to the closest
// in-path actor (Dist. CIPA), and planner KL-divergence (PKL) — plus the
// Lead-Time-For-Mitigating-Accident (LTFMA) heuristic of §V-A that scores
// how early a metric warns before an accident.
package metrics

import (
	"math"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/vehicle"
)

// Scene is the common input to every risk metric: the ego state and the
// (predicted or ground-truth) trajectories of all other actors. Trajs[i]
// must correspond to Actors[i] and be sampled at Dt.
type Scene struct {
	Map       roadmap.Map
	Ego       vehicle.State
	EgoParams vehicle.Params
	Actors    []*actor.Actor
	Trajs     []actor.Trajectory
	Horizon   float64 // look-ahead in seconds used by the PKL planner
	Dt        float64 // trajectory sampling interval

	// InPathRange is the length in metres of the forward corridor used to
	// decide whether an actor is "in path" (footnote 6). Zero selects the
	// 100 m default typical of forward-collision-warning systems.
	InPathRange float64
}

// steps returns the number of Dt steps covering the horizon.
func (s Scene) steps() int {
	if s.Dt <= 0 || s.Horizon <= 0 {
		return 0
	}
	return int(math.Round(s.Horizon / s.Dt))
}

// corridor returns the ego's forward corridor: a single oriented box from
// the ego's rear bumper to InPathRange metres ahead, one ego width wide.
// An actor is "in path" when its predicted trajectory enters this corridor.
func (s Scene) corridor() geom.Box {
	length := s.InPathRange
	if length <= 0 {
		length = 100
	}
	total := length + s.EgoParams.Length
	sin, cos := math.Sincos(s.Ego.Heading)
	center := s.Ego.Pos.Add(geom.V(cos, sin).Scale(length / 2))
	return geom.NewBox(center, total, s.EgoParams.Width, s.Ego.Heading)
}

// InPath holds the kinematic relation of an in-path actor to the ego.
type InPath struct {
	Index   int     // index into Scene.Actors
	Dist    float64 // bumper-to-bumper longitudinal gap (m), >= 0
	Closing float64 // closing speed (m/s), > 0 when the gap shrinks
}

// InPathActors returns, for every actor ahead of the ego whose predicted
// trajectory intersects the ego's path (footnote 6 of the paper), its gap
// and closing speed. Actors behind the ego are excluded: TTC and Dist. CIPA
// are forward-looking by construction, which is exactly the blindness the
// paper's rear-end typology exposes.
func InPathActors(s Scene) []InPath {
	corridor := s.corridor()
	heading := geom.V(math.Cos(s.Ego.Heading), math.Sin(s.Ego.Heading))
	var out []InPath
	for i, a := range s.Actors {
		rel := a.State.Pos.Sub(s.Ego.Pos)
		longitudinal := rel.Dot(heading)
		if longitudinal <= 0 {
			continue // behind the ego
		}
		if !pathIntersectsCorridor(corridor, a, s.Trajs[i], s.steps()) {
			continue
		}
		gap := longitudinal - s.EgoParams.Length/2 - a.Length/2
		if gap < 0 {
			gap = 0
		}
		closing := s.Ego.Velocity().Sub(a.State.Velocity()).Dot(rel.Unit())
		out = append(out, InPath{Index: i, Dist: gap, Closing: closing})
	}
	return out
}

// pathIntersectsCorridor reports whether any footprint of the actor's
// predicted trajectory enters the ego's forward corridor — a timing-agnostic
// "paths cross" test matching the paper's definition of in-path actors.
func pathIntersectsCorridor(corridor geom.Box, a *actor.Actor, tr actor.Trajectory, steps int) bool {
	for t := 0; t <= steps; t++ {
		if a.FootprintAt(tr.StateAt(t)).Intersects(corridor) {
			return true
		}
	}
	return false
}

// TTC returns the minimum time-to-collision over in-path actors:
// TTC = d / s_r (§IV-C). It returns +Inf when no in-path actor is closing.
func TTC(s Scene) float64 {
	min := math.Inf(1)
	for _, ip := range InPathActors(s) {
		if ip.Closing <= 1e-9 {
			continue
		}
		if ttc := ip.Dist / ip.Closing; ttc < min {
			min = ttc
		}
	}
	return min
}

// DistCIPA returns the distance to the closest in-path actor, or +Inf when
// there is none.
func DistCIPA(s Scene) float64 {
	min := math.Inf(1)
	for _, ip := range InPathActors(s) {
		if ip.Dist < min {
			min = ip.Dist
		}
	}
	return min
}
