package metrics

import (
	"math"
	"testing"
)

func FuzzLTFMA(f *testing.F) {
	f.Add([]byte{1, 1, 0, 1}, 3, 0.1)
	f.Add([]byte{}, 0, 0.5)
	f.Add([]byte{0, 0, 0}, 10, 0.1)
	f.Fuzz(func(t *testing.T, raw []byte, accident int, dt float64) {
		if math.IsNaN(dt) || math.IsInf(dt, 0) || dt < 0 || dt > 1e3 {
			t.Skip()
		}
		if accident < 0 || len(raw) > 10_000 {
			t.Skip()
		}
		risk := make([]bool, len(raw))
		for i, b := range raw {
			risk[i] = b%2 == 1
		}
		got := LTFMA(risk, accident, dt)
		if got < 0 {
			t.Fatalf("LTFMA negative: %v", got)
		}
		if got > float64(len(risk))*dt+1e-9 {
			t.Fatalf("LTFMA %v exceeds the whole trace %v", got, float64(len(risk))*dt)
		}
	})
}

func FuzzKLNonNegative(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 1.0, 1.0, 1.0)
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g float64) {
		weights := []float64{a, b, c, d, e, g}
		var p, q [NumCandidates]float64
		sp, sq := 0.0, 0.0
		for i := 0; i < NumCandidates; i++ {
			wp := math.Abs(weights[i%len(weights)])
			wq := math.Abs(weights[(i+3)%len(weights)])
			if math.IsNaN(wp) || math.IsInf(wp, 0) || math.IsNaN(wq) || math.IsInf(wq, 0) {
				t.Skip()
			}
			p[i], q[i] = wp+1e-6, wq+1e-6
			sp += p[i]
			sq += q[i]
		}
		for i := 0; i < NumCandidates; i++ {
			p[i] /= sp
			q[i] /= sq
		}
		if got := kl(p, q); got < 0 || math.IsNaN(got) {
			t.Fatalf("KL(p,q) = %v, want >= 0", got)
		}
	})
}
