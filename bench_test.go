// Package repro_test is the benchmark harness that regenerates every table
// and figure of the paper's evaluation (see DESIGN.md §4 for the index).
// Absolute numbers differ from the paper — the substrate is a 2-D simulator
// rather than CARLA — but each harness prints the paper's values next to
// the measured ones so the shape can be compared directly.
//
// Scale knobs (environment variables):
//
//	IPRISM_BENCH_SCENARIOS  scenario instances per typology (default 40; paper 1000)
//	IPRISM_BENCH_EPISODES   SMC training episodes          (default 40; paper 100)
package repro_test

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/actor"
	"repro/internal/agent"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/geom"
	"repro/internal/reach"
	"repro/internal/rl"
	"repro/internal/roadmap"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/smc"
	"repro/internal/sti"
	"repro/internal/vehicle"
)

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func benchOptions() experiments.Options {
	opt := experiments.DefaultOptions()
	opt.ScenariosPerTypology = envInt("IPRISM_BENCH_SCENARIOS", 40)
	opt.TrainEpisodes = envInt("IPRISM_BENCH_EPISODES", 40)
	return opt
}

// Shared, lazily built state so the figure benches don't retrain/rebuild.
var shared struct {
	once   sync.Once
	opt    experiments.Options
	suites []experiments.Suite
	err    error

	smcOnce sync.Once
	ghost   *smc.SMC
	smcErr  error
}

func benchSuites(b *testing.B) ([]experiments.Suite, experiments.Options) {
	b.Helper()
	shared.once.Do(func() {
		shared.opt = benchOptions()
		shared.suites, shared.err = experiments.BuildSuites(shared.opt)
	})
	if shared.err != nil {
		b.Fatal(shared.err)
	}
	return shared.suites, shared.opt
}

func benchGhostSMC(b *testing.B) *smc.SMC {
	b.Helper()
	suites, opt := benchSuites(b)
	shared.smcOnce.Do(func() {
		shared.ghost, shared.smcErr = experiments.TrainGhostCutInSMC(suites, opt)
	})
	if shared.smcErr != nil {
		b.Fatal(shared.smcErr)
	}
	return shared.ghost
}

// BenchmarkTableI_ScenarioSuite regenerates Table I: suite generation plus
// the baseline LBC run over every instance.
func BenchmarkTableI_ScenarioSuite(b *testing.B) {
	opt := benchOptions()
	var rows []experiments.TableIRow
	for i := 0; i < b.N; i++ {
		suites, err := experiments.BuildSuites(opt)
		if err != nil {
			b.Fatal(err)
		}
		rows = experiments.TableI(suites)
	}
	b.StopTimer()
	fmt.Printf("\n--- Table I (n=%d per typology; paper n=1000) ---\n", opt.ScenariosPerTypology)
	paper := map[scenario.Typology]string{
		scenario.GhostCutIn: "519/1000", scenario.LeadCutIn: "170/1000",
		scenario.LeadSlowdown: "118/1000", scenario.FrontAccident: "0/810",
		scenario.RearEnd: "770/1000",
	}
	for _, r := range rows {
		fmt.Printf("%-16s measured %d/%d accidents   paper %s\n",
			r.Typology, r.Accidents, r.Instances, paper[r.Typology])
	}
}

// BenchmarkTableII_LTFMA regenerates Table II: LTFMA of every risk metric
// over the accident scenarios.
func BenchmarkTableII_LTFMA(b *testing.B) {
	suites, opt := benchSuites(b)
	var res experiments.TableIIResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.TableII(suites, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Println("\n--- Table II: LTFMA seconds, mean (SD); paper averages in brackets ---")
	paperAvg := map[string]float64{
		"TTC": 0.83, "Dist. CIPA": 1.38, "PKL-All": 0.75, "PKL-Holdout": 1.19, "STI": 3.69,
	}
	for _, name := range experiments.MetricNames {
		fmt.Printf("%-12s", name)
		for _, cell := range res.LTFMA[name] {
			fmt.Printf(" %14s", cell)
		}
		fmt.Printf("   avg %.2f [paper %.2f]\n", res.Average[name], paperAvg[name])
	}
	b.ReportMetric(res.Average["STI"], "sti-ltfma-s")
	b.ReportMetric(res.Average["TTC"], "ttc-ltfma-s")
}

// BenchmarkTableIII_Mitigation regenerates Tables III and IV: SMC training
// per typology, the four-agent comparison, the rear-end acceleration
// extension, and the activation-timing analysis.
func BenchmarkTableIII_Mitigation(b *testing.B) {
	suites, opt := benchSuites(b)
	var t3 experiments.TableIIIResult
	var err error
	for i := 0; i < b.N; i++ {
		t3, err = experiments.TableIII(suites, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Println("\n--- Table III: CA% (accidents prevented) / TCR% (total collision rate) ---")
	paper := map[string][3]string{
		experiments.AgentLBCiPrism: {"49/26.7", "98/0.3", "87/1.5"},
		experiments.AgentLBCNoSTI:  {"1/51.6", "2/16.7", "86/1.6"},
		experiments.AgentLBCACA:    {"0/51.9", "0/17.0", "92/1.0"},
		experiments.AgentRIPiPrism: {"86/6.5", "61/26.5", "71/12.9"},
	}
	for _, name := range []string{
		experiments.AgentLBCiPrism, experiments.AgentLBCNoSTI,
		experiments.AgentLBCACA, experiments.AgentRIPiPrism,
	} {
		fmt.Printf("%-34s", name)
		for i, r := range t3.Rows[name] {
			fmt.Printf("  %s: %.0f/%.1f [paper %s]", t3.Typologies[i], r.CAPct, r.TCRPct, paper[name][i])
		}
		fmt.Println()
	}
	fmt.Printf("rear-end extension: CA %d/%d = %.0f%% [paper 282/770 = 37%%]\n",
		t3.RearEnd.CA, t3.RearEnd.TAS, t3.RearEnd.CAPct)

	fmt.Println("\n--- Table IV: first mitigation time (s), iPrism vs ACA ---")
	paperLead := [3]float64{0.57, 3.73, 1.32}
	for i, row := range experiments.TableIV(t3) {
		fmt.Printf("%-14s iPrism %.2f  ACA %.2f  lead %.2f [paper lead %.2f]\n",
			row.Typology, row.IPrism, row.ACA, row.LeadTime, paperLead[i])
	}
}

// BenchmarkFig4_RiskCharacterization regenerates the Fig. 4 metric traces
// (mean±SD of STI/PKL/TTC, safe vs accident populations).
func BenchmarkFig4_RiskCharacterization(b *testing.B) {
	suites, opt := benchSuites(b)
	var series []experiments.Fig4Series
	var err error
	for i := 0; i < b.N; i++ {
		series, err = experiments.Fig4(suites, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Println("\n--- Fig. 4: final-step mean of each metric (accident population) ---")
	for _, s := range series {
		if s.Accident.Len() == 0 {
			continue
		}
		last := s.Accident.Mean[s.Accident.Len()-1]
		fmt.Printf("%-16s %-4s accident-final %.2f  (STI should approach 1 at accidents)\n",
			s.Typology, s.Metric, last)
	}
}

// BenchmarkFig5_STITraces regenerates Fig. 5: ghost cut-in STI with and
// without iPrism.
func BenchmarkFig5_STITraces(b *testing.B) {
	suites, opt := benchSuites(b)
	ctrl := benchGhostSMC(b)
	var res experiments.Fig5Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig5(suites, ctrl, opt, 12)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	peak := func(xs []float64) float64 {
		m := 0.0
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	fmt.Printf("\n--- Fig. 5: ghost cut-in STI peak: LBC %.2f vs iPrism %.2f (paper: iPrism consistently lower) ---\n",
		peak(res.LBC.Mean), peak(res.IPrism.Mean))
}

// BenchmarkFig6_DatasetCharacterization regenerates Fig. 6: the STI
// distribution of the synthetic real-world corpus.
func BenchmarkFig6_DatasetCharacterization(b *testing.B) {
	opt := benchOptions()
	corpus := dataset.DefaultCorpusConfig()
	var res experiments.Fig6Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig6(corpus, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Println("\n--- Fig. 6: corpus STI percentiles p50/p75/p90/p99 ---")
	fmt.Printf("actor    %.2f/%.2f/%.2f/%.2f [paper 0.00/0.00/0.02/0.33]\n",
		res.Actor.P50, res.Actor.P75, res.Actor.P90, res.Actor.P99)
	fmt.Printf("combined %.2f/%.2f/%.2f/%.2f [paper 0.09/0.29/0.52/0.93]\n",
		res.Combined.P50, res.Combined.P75, res.Combined.P90, res.Combined.P99)
}

// BenchmarkFig7_CaseStudies regenerates Fig. 7: the four mined scenes.
func BenchmarkFig7_CaseStudies(b *testing.B) {
	opt := benchOptions()
	var cases []experiments.Fig7Case
	var err error
	for i := 0; i < b.N; i++ {
		cases, err = experiments.Fig7(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Println("\n--- Fig. 7: key-actor STI per case ---")
	paper := map[string]string{
		"pedestrian crossing": "0.72", "oversized actor": "0.69",
		"cluttered street": "0.35 (entering actor)", "actor pulling out": "nonzero",
	}
	for _, c := range cases {
		fmt.Printf("%-20s key %.2f combined %.2f [paper %s]\n", c.Name, c.KeySTI, c.Combined, paper[c.Name])
	}
}

// BenchmarkRoundabout_RIP regenerates the §V-C roundabout generalisation
// study.
func BenchmarkRoundabout_RIP(b *testing.B) {
	_, opt := benchSuites(b)
	ctrl := benchGhostSMC(b)
	var res experiments.RoundaboutResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = experiments.Roundabout(ctrl, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Printf("\n--- Roundabout: pilot %d/%d collisions, +iPrism %d/%d, mitigated %.0f%% [paper 84.3%% -> 68.6%%] ---\n",
		res.RIPCollisions, res.Instances, res.IPrismCollisions, res.Instances, res.Mitigated*100)
}

// BenchmarkSTIEvaluation measures one full STI evaluation (per-actor
// counterfactuals included) — §V-E reports 0.61 s for the authors' Python
// implementation.
func BenchmarkSTIEvaluation(b *testing.B) {
	eval := sti.MustNewEvaluator(reach.DefaultConfig())
	road := roadmap.MustStraightRoad(2, 3.5, -100, 1000)
	actors := []*actor.Actor{
		actor.NewVehicle(1, vehicle.State{Pos: geom.V(14, 1.75), Speed: 3}),
		actor.NewVehicle(2, vehicle.State{Pos: geom.V(5, 5.25), Speed: 10}),
		actor.NewVehicle(3, vehicle.State{Pos: geom.V(-15, 1.75), Speed: 15}),
	}
	ego := vehicle.State{Pos: geom.V(0, 1.75), Speed: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.EvaluateWithPrediction(road, ego, actors)
	}
}

// BenchmarkSMCInference measures one SMC decision (STI + featurise +
// Q-network forward) — §V-E reports 12 ms.
func BenchmarkSMCInference(b *testing.B) {
	cfg := smc.DefaultConfig()
	learner, err := rl.NewDDQN(cfg.FeatureDim(), len(cfg.Actions), cfg.DDQN)
	if err != nil {
		b.Fatal(err)
	}
	ctrl, err := smc.New(cfg, learner.Policy())
	if err != nil {
		b.Fatal(err)
	}
	road := roadmap.MustStraightRoad(2, 3.5, -100, 1000)
	obs := sim.Observation{
		Map:       road,
		Ego:       vehicle.State{Pos: geom.V(0, 1.75), Speed: 10},
		EgoParams: vehicle.DefaultParams(),
		Dt:        0.1,
		Actors: []*actor.Actor{
			actor.NewVehicle(1, vehicle.State{Pos: geom.V(14, 1.75), Speed: 3}),
			actor.NewVehicle(2, vehicle.State{Pos: geom.V(5, 5.25), Speed: 10}),
		},
	}
	ads := vehicle.Control{Accel: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Reset() // force a fresh decision every call
		ctrl.Mitigate(obs, ads)
	}
}

// BenchmarkSMCTrainingEpisode measures one SMC training episode — §V-E
// reports 344 s per episode on the authors' GPU platform.
func BenchmarkSMCTrainingEpisode(b *testing.B) {
	scns := scenario.Generate(scenario.GhostCutIn, 1, 3)
	lbc := func() sim.Driver { return agent.NewLBC(agent.DefaultLBCConfig()) }
	cfg := smc.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := smc.Train(scns, lbc, cfg, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReachAblation compares the paper's boundary-control enumeration
// (optimisation 2) against dense uniform sampling — footnote 5 claims the
// results differ only marginally while the cost differs substantially.
func BenchmarkReachAblation(b *testing.B) {
	road := roadmap.MustStraightRoad(2, 3.5, -100, 1000)
	ego := vehicle.State{Pos: geom.V(0, 1.75), Speed: 10}
	for _, bench := range []struct {
		name    string
		samples int
	}{
		{"boundary-only", 0},
		{"sampled-25", 25},
		{"sampled-100", 100},
	} {
		b.Run(bench.name, func(b *testing.B) {
			cfg := reach.DefaultConfig()
			if bench.samples > 0 {
				cfg.BoundaryOnly = false
				cfg.Samples = bench.samples
			}
			var vol float64
			for i := 0; i < b.N; i++ {
				vol = reach.Compute(road, nil, ego, cfg).Volume
			}
			b.ReportMetric(vol, "tube-m2")
		})
	}
}

// BenchmarkActionSpaceAblation studies the SMC action space on the
// rear-end typology: braking alone cannot mitigate a threat from behind
// (§V-C); acceleration can; the lane-change extension (§VII) is included
// as implemented future work.
func BenchmarkActionSpaceAblation(b *testing.B) {
	suites, opt := benchSuites(b)
	var sets []experiments.ActionSetResult
	var err error
	for i := 0; i < b.N; i++ {
		sets, err = experiments.ActionAblation(suites, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Println("\n--- Action-space ablation on rear-end (paper: braking useless, accel saves 37%) ---")
	for _, s := range sets {
		fmt.Printf("%-26s CA %d/%d (%.0f%%)\n", s.Name, s.CA, s.TAS, s.CAPct)
	}
}

// BenchmarkImpactSeverity is an extension analysis beyond the paper:
// collision counts hide that a mitigation controller also sheds kinetic
// energy in the accidents it cannot prevent. Compare impact speeds of the
// baseline's rear-end collisions with the iPrism residuals.
func BenchmarkImpactSeverity(b *testing.B) {
	suites, opt := benchSuites(b)
	var res experiments.SeverityResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Severity(suites, scenario.RearEnd, nil, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Printf("\n--- Impact severity (rear-end): baseline %d collisions, mean %.1f m/s (p90 %.1f); "+
		"with iPrism %d collisions, mean %.1f m/s (p90 %.1f) ---\n",
		res.BaselineCollisions, res.BaselineMeanImpact, res.BaselineP90Impact,
		res.MitigatedCollisions, res.MitigatedMeanImpact, res.MitigatedP90Impact)
}

// BenchmarkSensitivity quantifies §IV-B1's criticality claim: the
// correlation between each scenario hyperparameter and the crash outcome.
func BenchmarkSensitivity(b *testing.B) {
	suites, _ := benchSuites(b)
	results := map[scenario.Typology][]experiments.SensitivityRow{}
	for i := 0; i < b.N; i++ {
		for _, suite := range suites {
			if suite.Typology == scenario.FrontAccident {
				continue
			}
			rows, err := experiments.Sensitivity(suite)
			if err != nil {
				b.Fatal(err)
			}
			results[suite.Typology] = rows
		}
	}
	b.StopTimer()
	fmt.Println("\n--- Hyperparameter sensitivity (correlation with crash outcome) ---")
	for _, suite := range suites {
		rows, ok := results[suite.Typology]
		if !ok {
			continue
		}
		fmt.Printf("%-16s", suite.Typology)
		for _, r := range rows {
			fmt.Printf("  %s %.2f", r.Hyperparameter, r.Correlation)
		}
		fmt.Println()
	}
}
