#!/usr/bin/env bash
# Tier-1 verification gate (referenced from ROADMAP.md): static checks,
# a full build, the test suite under the race detector, a serving-stack
# smoke (real iprism-serve process driven by iprism-loadgen, then a
# graceful SIGTERM drain), and the perf regression gate over the committed
# BENCH_*.json snapshots (passes when a kind has fewer than two snapshots).
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
# The race detector is ~10x; internal/experiments alone runs ~20 min on a
# 1-CPU container, past go test's default 10 min per-package timeout.
go test -race -timeout 45m ./...

# Differential suite: the shared-expansion counterfactual engine must match
# the legacy per-actor oracle bit-for-bit (already part of ./... above, but
# run explicitly so a perf-motivated edit cannot silently drop the proof).
go test -race -count=1 -run 'Shared|MaskGrid' ./internal/reach ./internal/sti ./internal/geom ./internal/server

# Serving smoke: ephemeral-port server, a short load burst, then SIGTERM.
# The server must answer every accepted request and exit 0 from the drain.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
go build -o "$smoke_dir" ./cmd/iprism-serve ./cmd/iprism-loadgen
"$smoke_dir/iprism-serve" -addr 127.0.0.1:0 -addr-file "$smoke_dir/addr" &
serve_pid=$!
for _ in $(seq 1 100); do
  [ -s "$smoke_dir/addr" ] && break
  kill -0 "$serve_pid" 2>/dev/null || { echo "verify: iprism-serve died before listening" >&2; exit 1; }
  sleep 0.1
done
[ -s "$smoke_dir/addr" ] || { echo "verify: iprism-serve never wrote addr-file" >&2; exit 1; }
"$smoke_dir/iprism-loadgen" -target "http://$(cat "$smoke_dir/addr")" \
  -requests 200 -concurrency 4 -batch 8 -scenes 20 -min-rate 100
kill -TERM "$serve_pid"
wait "$serve_pid"
echo "verify: serving smoke passed (graceful drain exit 0)"

go run ./cmd/iprism-benchdiff -dir .
