#!/usr/bin/env bash
# Tier-1 verification gate (referenced from ROADMAP.md): static checks,
# a full build, the test suite under the race detector, a serving-stack
# smoke (real iprism-serve process driven by iprism-loadgen, then a
# graceful SIGTERM drain), and the perf regression gate over the committed
# BENCH_*.json snapshots (passes when a kind has fewer than two snapshots).
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
# The race detector is ~10x; internal/experiments alone runs ~20 min on a
# 1-CPU container, past go test's default 10 min per-package timeout.
go test -race -timeout 45m ./...

# Differential suite: the shared-expansion counterfactual engine must match
# the legacy per-actor oracle bit-for-bit — including the 64-130-actor
# segmented-mask scenes and the FuzzSharedVsLegacy seed corpus (already part
# of ./... above, but run explicitly so a perf-motivated edit cannot
# silently drop the proof).
go test -race -count=1 -run 'Shared|MaskGrid|FuzzSharedVsLegacy' \
  ./internal/reach ./internal/sti ./internal/geom ./internal/server

# Serving smoke: ephemeral-port server, a short load burst, then SIGTERM.
# The server must answer every accepted request and exit 0 from the drain.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
go build -o "$smoke_dir" ./cmd/iprism-serve ./cmd/iprism-loadgen ./cmd/iprism-promlint ./cmd/iprism-risktrace
"$smoke_dir/iprism-serve" -addr 127.0.0.1:0 -addr-file "$smoke_dir/addr" \
  -journal "$smoke_dir/journal.jsonl" &
serve_pid=$!
for _ in $(seq 1 100); do
  [ -s "$smoke_dir/addr" ] && break
  kill -0 "$serve_pid" 2>/dev/null || { echo "verify: iprism-serve died before listening" >&2; exit 1; }
  sleep 0.1
done
[ -s "$smoke_dir/addr" ] || { echo "verify: iprism-serve never wrote addr-file" >&2; exit 1; }
serve_url="http://$(cat "$smoke_dir/addr")"
"$smoke_dir/iprism-loadgen" -target "$serve_url" \
  -requests 200 -concurrency 4 -batch 8 -scenes 20 -min-rate 100

# Observability smoke: a caller-supplied trace ID must round-trip through
# the response header, resolve in /debug/requests, and land as a wide event
# in the journal; /metrics must pass the conformance linter in both formats.
trace_id="cafe0000000000000000000000000001"
cat > "$smoke_dir/scene.json" <<'EOF'
{"version":"iprism.scene/v1","ego":{"x":0,"y":1.75,"heading":0,"speed":10},
 "road":{"kind":"straight","straight":{"lanes":2,"lane_width":3.5,"x_min":-100,"x_max":400}},
 "actors":[{"id":1,"kind":"vehicle","state":{"x":14,"y":1.75,"heading":0,"speed":3}},
           {"id":2,"kind":"vehicle","state":{"x":-40,"y":5.25,"heading":0,"speed":8}}]}
EOF
curl -sS -D "$smoke_dir/headers" -o "$smoke_dir/score.json" \
  -H "X-Trace-Id: $trace_id" -H 'Content-Type: application/json' \
  --data-binary @"$smoke_dir/scene.json" "$serve_url/v1/score?explain=1"
grep -qi "^X-Trace-Id: $trace_id" "$smoke_dir/headers" \
  || { echo "verify: X-Trace-Id did not round-trip" >&2; cat "$smoke_dir/headers" >&2; exit 1; }
grep -qi "^X-Request-Id: " "$smoke_dir/headers" \
  || { echo "verify: response missing X-Request-Id" >&2; exit 1; }
grep -q '"provenance"' "$smoke_dir/score.json" \
  || { echo "verify: ?explain=1 returned no provenance block" >&2; cat "$smoke_dir/score.json" >&2; exit 1; }
curl -sSf "$serve_url/debug/requests?trace_id=$trace_id" | grep -q "$trace_id" \
  || { echo "verify: trace not resolvable via /debug/requests" >&2; exit 1; }
curl -sSf "$serve_url/debug/slo" | grep -q '"availability"' \
  || { echo "verify: /debug/slo missing availability objective" >&2; exit 1; }
"$smoke_dir/iprism-promlint" -url "$serve_url/metrics"
"$smoke_dir/iprism-promlint" -url "$serve_url/metrics" -openmetrics

kill -TERM "$serve_pid"
wait "$serve_pid"
grep -q "\"trace_id\":\"$trace_id\"" "$smoke_dir/journal.jsonl" \
  || { echo "verify: journal has no wide event for the smoke trace" >&2; exit 1; }
"$smoke_dir/iprism-risktrace" -trace "$smoke_dir/journal.jsonl" -trace-id "$trace_id" > /dev/null
echo "verify: serving + observability smoke passed (graceful drain exit 0)"

go run ./cmd/iprism-benchdiff -dir .
