#!/usr/bin/env bash
# Tier-1 verification gate (referenced from ROADMAP.md): static checks,
# a full build, the test suite under the race detector, a serving-stack
# smoke (real iprism-serve process driven by iprism-loadgen, then a
# graceful SIGTERM drain), and the perf regression gate over the committed
# BENCH_*.json snapshots (passes when a kind has fewer than two snapshots).
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
# The race detector is ~10x; internal/experiments alone runs ~20 min on a
# 1-CPU container, past go test's default 10 min per-package timeout.
go test -race -timeout 45m ./...

# Differential suite: the shared-expansion counterfactual engine must match
# the legacy per-actor oracle bit-for-bit — including the 64-130-actor
# segmented-mask scenes and the FuzzSharedVsLegacy seed corpus — and the
# warm-started session engine must match the cold path bit-for-bit across
# recorded session traces and the FuzzWarmVsCold perturbation corpus
# (already part of ./... above, but run explicitly so a perf-motivated
# edit cannot silently drop either proof).
go test -race -count=1 -run 'Shared|MaskGrid|Warm|FuzzSharedVsLegacy|FuzzWarmVsCold' \
  ./internal/reach ./internal/sti ./internal/geom ./internal/server

# Serving smoke: ephemeral-port server, a short load burst, then SIGTERM.
# The server must answer every accepted request and exit 0 from the drain.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
go build -o "$smoke_dir" ./cmd/iprism-serve ./cmd/iprism-loadgen ./cmd/iprism-promlint ./cmd/iprism-risktrace
"$smoke_dir/iprism-serve" -addr 127.0.0.1:0 -addr-file "$smoke_dir/addr" \
  -journal "$smoke_dir/journal.jsonl" &
serve_pid=$!
for _ in $(seq 1 100); do
  [ -s "$smoke_dir/addr" ] && break
  kill -0 "$serve_pid" 2>/dev/null || { echo "verify: iprism-serve died before listening" >&2; exit 1; }
  sleep 0.1
done
[ -s "$smoke_dir/addr" ] || { echo "verify: iprism-serve never wrote addr-file" >&2; exit 1; }
serve_url="http://$(cat "$smoke_dir/addr")"
"$smoke_dir/iprism-loadgen" -target "$serve_url" \
  -requests 200 -concurrency 4 -batch 8 -scenes 20 -min-rate 100

# Observability smoke: a caller-supplied trace ID must round-trip through
# the response header, resolve in /debug/requests, and land as a wide event
# in the journal; /metrics must pass the conformance linter in both formats.
trace_id="cafe0000000000000000000000000001"
cat > "$smoke_dir/scene.json" <<'EOF'
{"version":"iprism.scene/v1","ego":{"x":0,"y":1.75,"heading":0,"speed":10},
 "road":{"kind":"straight","straight":{"lanes":2,"lane_width":3.5,"x_min":-100,"x_max":400}},
 "actors":[{"id":1,"kind":"vehicle","state":{"x":14,"y":1.75,"heading":0,"speed":3}},
           {"id":2,"kind":"vehicle","state":{"x":-40,"y":5.25,"heading":0,"speed":8}}]}
EOF
curl -sS -D "$smoke_dir/headers" -o "$smoke_dir/score.json" \
  -H "X-Trace-Id: $trace_id" -H 'Content-Type: application/json' \
  --data-binary @"$smoke_dir/scene.json" "$serve_url/v1/score?explain=1"
grep -qi "^X-Trace-Id: $trace_id" "$smoke_dir/headers" \
  || { echo "verify: X-Trace-Id did not round-trip" >&2; cat "$smoke_dir/headers" >&2; exit 1; }
grep -qi "^X-Request-Id: " "$smoke_dir/headers" \
  || { echo "verify: response missing X-Request-Id" >&2; exit 1; }
grep -q '"provenance"' "$smoke_dir/score.json" \
  || { echo "verify: ?explain=1 returned no provenance block" >&2; cat "$smoke_dir/score.json" >&2; exit 1; }
curl -sSf "$serve_url/debug/requests?trace_id=$trace_id" | grep -q "$trace_id" \
  || { echo "verify: trace not resolvable via /debug/requests" >&2; exit 1; }
curl -sSf "$serve_url/debug/slo" | grep -q '"availability"' \
  || { echo "verify: /debug/slo missing availability objective" >&2; exit 1; }
"$smoke_dir/iprism-promlint" -url "$serve_url/metrics"
"$smoke_dir/iprism-promlint" -url "$serve_url/metrics" -openmetrics

kill -TERM "$serve_pid"
wait "$serve_pid"
grep -q "\"trace_id\":\"$trace_id\"" "$smoke_dir/journal.jsonl" \
  || { echo "verify: journal has no wide event for the smoke trace" >&2; exit 1; }
"$smoke_dir/iprism-risktrace" -trace "$smoke_dir/journal.jsonl" -trace-id "$trace_id" > /dev/null
echo "verify: serving + observability smoke passed (graceful drain exit 0)"

# Fleet smoke: three backends behind iprism-gateway. Sessions must stay
# sticky (at most one move — the deliberate mid-run SIGKILL of a backend),
# client-visible errors must stay under 1% while the gateway ejects the
# corpse and retries around it, SSE must stream and resume through the
# gateway, and a corpus job must complete across the survivors.
go build -o "$smoke_dir" ./cmd/iprism-gateway
backend_pids=()
for i in 1 2 3; do
  "$smoke_dir/iprism-serve" -addr 127.0.0.1:0 -addr-file "$smoke_dir/b$i.addr" &
  backend_pids+=($!)
done
for i in 1 2 3; do
  for _ in $(seq 1 100); do [ -s "$smoke_dir/b$i.addr" ] && break; sleep 0.1; done
  [ -s "$smoke_dir/b$i.addr" ] || { echo "verify: fleet backend $i never listened" >&2; exit 1; }
done
backends="$(cat "$smoke_dir/b1.addr"),$(cat "$smoke_dir/b2.addr"),$(cat "$smoke_dir/b3.addr")"
"$smoke_dir/iprism-gateway" -addr 127.0.0.1:0 -addr-file "$smoke_dir/gw.addr" \
  -backends "$backends" -probe-interval 200ms &
gw_pid=$!
for _ in $(seq 1 100); do [ -s "$smoke_dir/gw.addr" ] && break; sleep 0.1; done
[ -s "$smoke_dir/gw.addr" ] || { echo "verify: iprism-gateway never listened" >&2; exit 1; }
gw_url="http://$(cat "$smoke_dir/gw.addr")"

# SSE through the gateway: create a session, record three observations,
# then attach with Last-Event-ID resume and expect the replay.
sid=$(curl -sS -X POST -H 'Content-Type: application/json' -d '{}' "$gw_url/v1/sessions" \
  | grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4)
[ -n "$sid" ] || { echo "verify: gateway session create returned no id" >&2; exit 1; }
for _ in 1 2 3; do
  curl -sSf -o /dev/null -H 'Content-Type: application/json' \
    --data-binary @"$smoke_dir/scene.json" "$gw_url/v1/sessions/$sid/observe"
done
curl -sS --max-time 2 -H 'Last-Event-ID: 1' \
  "$gw_url/v1/sessions/$sid/stream" > "$smoke_dir/stream.txt" || true
grep -q "^event: risk" "$smoke_dir/stream.txt" \
  || { echo "verify: gateway SSE stream carried no risk events" >&2; cat "$smoke_dir/stream.txt" >&2; exit 1; }
grep -q "^id: 2" "$smoke_dir/stream.txt" \
  || { echo "verify: Last-Event-ID resume did not replay event 2" >&2; cat "$smoke_dir/stream.txt" >&2; exit 1; }

# Fleet load with a mid-run SIGKILL of one backend plus a corpus job. The
# loadgen gates affinity (max one backend move per session), the error
# rate, a throughput floor, and the job's per-scene results.
( sleep 2; kill -9 "${backend_pids[1]}" ) &
killer_pid=$!
"$smoke_dir/iprism-loadgen" -target "$gw_url" -gateway \
  -duration 6s -concurrency 4 -scenes 20 \
  -max-error-rate 0.01 -max-session-moves 1 -min-rate 30 \
  -job-scenes 30 -o "$smoke_dir"
wait "$killer_pid"
ls "$smoke_dir"/BENCH_serve_*.json >/dev/null \
  || { echo "verify: fleet loadgen wrote no snapshot" >&2; exit 1; }
grep -q '"kind": "fleet"' "$smoke_dir"/BENCH_serve_*.json \
  || { echo "verify: fleet snapshot has wrong kind" >&2; exit 1; }

# Gateway observability: the killed backend must show as ejected, the
# flight recorder must hold proxy wide events, and /metrics must pass the
# conformance linter in both formats.
curl -sSf "$gw_url/debug/backends" | grep -q '"healthy":2' \
  || { echo "verify: gateway never ejected the SIGKILL'd backend" >&2; curl -s "$gw_url/debug/backends" >&2; exit 1; }
curl -sSf "$gw_url/debug/requests" | grep -q '"route"' \
  || { echo "verify: gateway flight recorder is empty" >&2; exit 1; }
"$smoke_dir/iprism-promlint" -url "$gw_url/metrics"
"$smoke_dir/iprism-promlint" -url "$gw_url/metrics" -openmetrics

kill -TERM "$gw_pid"
wait "$gw_pid"
kill -TERM "${backend_pids[0]}" "${backend_pids[2]}"
wait "${backend_pids[0]}" "${backend_pids[2]}"
echo "verify: fleet smoke passed (SIGKILL failover absorbed, graceful drain exit 0)"

# Training smoke: a short seeded run, then an identical run interrupted by
# SIGINT after its first checkpoint and completed with -resume. The resumed
# controller must be bitwise-equal to the uninterrupted one — the checkpoint
# carries the exact learner/RNG/schedule state. (If the run outraces the
# signal the kill is a no-op and the cmp still gates resume correctness.)
go build -o "$smoke_dir" ./cmd/iprism-train
"$smoke_dir/iprism-train" -typology ghost-cut-in -n 6 -seed 11 -episodes 40 \
  -o "$smoke_dir/smc_a.json" > /dev/null
"$smoke_dir/iprism-train" -typology ghost-cut-in -n 6 -seed 11 -episodes 40 \
  -checkpoint "$smoke_dir/train.ck" -checkpoint-every 2 \
  -o "$smoke_dir/smc_cut.json" > "$smoke_dir/train_cut.log" &
train_pid=$!
for _ in $(seq 1 300); do
  [ -s "$smoke_dir/train.ck" ] && break
  kill -0 "$train_pid" 2>/dev/null || break
  sleep 0.1
done
kill -INT "$train_pid" 2>/dev/null || true
wait "$train_pid" \
  || { echo "verify: interrupted iprism-train exited non-zero" >&2; cat "$smoke_dir/train_cut.log" >&2; exit 1; }
"$smoke_dir/iprism-train" -typology ghost-cut-in -n 6 -seed 11 -episodes 40 \
  -checkpoint "$smoke_dir/train.ck" -resume -o "$smoke_dir/smc_b.json" > /dev/null
cmp "$smoke_dir/smc_a.json" "$smoke_dir/smc_b.json" \
  || { echo "verify: resumed training diverged from the uninterrupted run" >&2; exit 1; }
echo "verify: training interrupt/resume smoke passed (controllers bitwise-equal)"

go run ./cmd/iprism-benchdiff -dir .
