#!/usr/bin/env bash
# Tier-1 verification gate (referenced from ROADMAP.md): static checks,
# a full build, the test suite under the race detector, and the perf
# regression gate over the committed BENCH_*.json snapshots (passes when
# fewer than two snapshots exist).
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
# The race detector is ~10x; internal/experiments alone runs ~20 min on a
# 1-CPU container, past go test's default 10 min per-package timeout.
go test -race -timeout 45m ./...
go run ./cmd/iprism-benchdiff -dir .
