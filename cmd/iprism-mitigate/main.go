// Command iprism-mitigate reproduces the mitigation studies of §V-C:
// Table III (accident prevention rates of LBC+iPrism, the no-STI ablation,
// TTC-based ACA, and RIP+iPrism), Table IV (mitigation activation timing),
// the rear-end acceleration extension, and optionally the roundabout
// generalisation study.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iprism-mitigate:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n          = flag.Int("n", 60, "scenario instances per typology (paper: 1000)")
		seed       = flag.Int64("seed", 2024, "suite generation seed")
		episodes   = flag.Int("episodes", 60, "SMC training episodes per typology (paper: 100)")
		roundabout = flag.Bool("roundabout", false, "also run the roundabout generalisation study")
	)
	flag.Parse()

	opt := experiments.DefaultOptions()
	opt.ScenariosPerTypology = *n
	opt.Seed = *seed
	opt.TrainEpisodes = *episodes

	fmt.Printf("building %d scenarios per typology and running the LBC baseline...\n", *n)
	suites, err := experiments.BuildSuites(opt)
	if err != nil {
		return err
	}
	fmt.Printf("training SMCs (%d episodes each) and evaluating agents...\n", *episodes)
	t3, err := experiments.TableIII(suites, opt)
	if err != nil {
		return err
	}

	fmt.Println("\nTable III: accident prevention rates")
	agents := []string{
		experiments.AgentLBCiPrism, experiments.AgentLBCNoSTI,
		experiments.AgentLBCACA, experiments.AgentRIPiPrism,
	}
	fmt.Printf("%-34s", "Agent")
	for _, ty := range t3.Typologies {
		fmt.Printf(" | %-24s", ty)
	}
	fmt.Println()
	fmt.Printf("%-34s", "")
	for range t3.Typologies {
		fmt.Printf(" | %5s %6s %5s %4s", "CA%", "TCR%", "CA#", "TAS")
	}
	fmt.Println()
	for _, name := range agents {
		fmt.Printf("%-34s", name)
		for _, r := range t3.Rows[name] {
			fmt.Printf(" | %5.0f %6.1f %5d %4d", r.CAPct, r.TCRPct, r.CA, r.TAS)
		}
		fmt.Println()
	}
	fmt.Printf("\nRear-end extension (acceleration action): CA %d/%d (%.0f%%; paper: 282/770 = 37%%)\n",
		t3.RearEnd.CA, t3.RearEnd.TAS, t3.RearEnd.CAPct)

	fmt.Println("\nTable IV: average first-mitigation time (s); lower is earlier")
	fmt.Printf("%-28s %-14s %-14s %-14s\n", "Agent", "Ghost cut-in", "Lead cut-in", "Lead slowdown")
	t4 := experiments.TableIV(t3)
	printTimes := func(label string, pick func(experiments.TableIVRow) float64) {
		fmt.Printf("%-28s", label)
		for _, row := range t4 {
			fmt.Printf(" %-14.2f", pick(row))
		}
		fmt.Println()
	}
	printTimes("LBC+SMC w/ STI (iPrism)", func(r experiments.TableIVRow) float64 { return r.IPrism })
	printTimes("LBC+TTC-based ACA", func(r experiments.TableIVRow) float64 { return r.ACA })
	printTimes("Lead time in mitigation", func(r experiments.TableIVRow) float64 { return r.LeadTime })

	if *roundabout {
		fmt.Println("\nRoundabout generalisation study (ring pilot ± transferred iPrism)...")
		ctrl, err := experiments.TrainGhostCutInSMC(suites, opt)
		if err != nil {
			return err
		}
		rb, err := experiments.Roundabout(ctrl, opt)
		if err != nil {
			return err
		}
		fmt.Printf("pilot collisions %d/%d; with iPrism %d/%d; mitigated %.1f%% (paper: 84.3%% -> 68.6%%, 18.6%% mitigated)\n",
			rb.RIPCollisions, rb.Instances, rb.IPrismCollisions, rb.Instances, rb.Mitigated*100)
	}
	return nil
}
