// Command iprism-risktrace dumps the Fig. 4 risk-characterisation series
// (mean±SD of STI/PKL/TTC over time, split safe vs accident) and, with
// -mitigated, the Fig. 5 STI comparison (LBC vs LBC+iPrism on ghost
// cut-in) as CSV on stdout.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iprism-risktrace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n         = flag.Int("n", 40, "scenario instances per typology")
		seed      = flag.Int64("seed", 2024, "suite generation seed")
		mitigated = flag.Bool("mitigated", false, "emit Fig. 5 (train an SMC and compare STI traces)")
		episodes  = flag.Int("episodes", 60, "SMC training episodes for -mitigated")
		telAddr   = flag.String("telemetry", "", "serve expvar and pprof on this address (e.g. localhost:6060)")
		journal   = flag.String("journal", "", "write a JSONL telemetry journal to this path")
	)
	flag.Parse()

	telCleanup, err := telemetry.Setup(*telAddr, *journal)
	if err != nil {
		return err
	}
	defer telCleanup()

	opt := experiments.DefaultOptions()
	opt.ScenariosPerTypology = *n
	opt.Seed = *seed
	opt.TrainEpisodes = *episodes

	suites, err := experiments.BuildSuites(opt)
	if err != nil {
		return err
	}
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()

	if *mitigated {
		ctrl, err := experiments.TrainGhostCutInSMC(suites, opt)
		if err != nil {
			return err
		}
		f5, err := experiments.Fig5(suites, ctrl, opt, 0)
		if err != nil {
			return err
		}
		if err := w.Write([]string{"t", "sti_lbc_mean", "sti_lbc_sd", "sti_iprism_mean", "sti_iprism_sd"}); err != nil {
			return err
		}
		n := f5.LBC.Len()
		if f5.IPrism.Len() > n {
			n = f5.IPrism.Len()
		}
		for i := 0; i < n; i++ {
			row := []string{f(float64(i) * f5.Dt)}
			row = append(row, seriesAt(f5.LBC.Mean, i), seriesAt(f5.LBC.SD, i))
			row = append(row, seriesAt(f5.IPrism.Mean, i), seriesAt(f5.IPrism.SD, i))
			if err := w.Write(row); err != nil {
				return err
			}
		}
		return nil
	}

	series, err := experiments.Fig4(suites, opt)
	if err != nil {
		return err
	}
	if err := w.Write([]string{"typology", "metric", "population", "t", "mean", "sd", "n"}); err != nil {
		return err
	}
	for _, s := range series {
		for name, pop := range map[string]struct {
			mean, sd []float64
			n        []int
		}{
			"safe":     {s.Safe.Mean, s.Safe.SD, s.Safe.N},
			"accident": {s.Accident.Mean, s.Accident.SD, s.Accident.N},
		} {
			for i := range pop.mean {
				if err := w.Write([]string{
					s.Typology.String(), s.Metric, name,
					f(float64(i) * s.Dt), f(pop.mean[i]), f(pop.sd[i]),
					strconv.Itoa(pop.n[i]),
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

func seriesAt(xs []float64, i int) string {
	if i >= len(xs) {
		return ""
	}
	return f(xs[i])
}
