// Command iprism-risktrace dumps the Fig. 4 risk-characterisation series
// (mean±SD of STI/PKL/TTC over time, split safe vs accident) and, with
// -mitigated, the Fig. 5 STI comparison (LBC vs LBC+iPrism on ghost
// cut-in) as CSV on stdout.
//
// With -trace <journal.jsonl> it instead replays the wide events captured
// by a serving journal, rendering one span waterfall per request so a
// TraceID taken from an X-Trace-Id header, a /metrics exemplar, or a
// loadgen "slowest requests" report can be inspected offline:
//
//	iprism-risktrace -trace serve-journal.jsonl -trace-id 4bf9…
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iprism-risktrace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n         = flag.Int("n", 40, "scenario instances per typology")
		seed      = flag.Int64("seed", 2024, "suite generation seed")
		mitigated = flag.Bool("mitigated", false, "emit Fig. 5 (train an SMC and compare STI traces)")
		episodes  = flag.Int("episodes", 60, "SMC training episodes for -mitigated")
		telAddr   = flag.String("telemetry", "", "serve expvar and pprof on this address (e.g. localhost:6060)")
		journal   = flag.String("journal", "", "write a JSONL telemetry journal to this path")
		traceFile = flag.String("trace", "", "replay the wide events of this serving journal instead of running experiments")
		traceID   = flag.String("trace-id", "", "with -trace: only requests carrying this trace ID")
		slowest   = flag.Int("slowest", 0, "with -trace: only the N slowest requests")
	)
	flag.Parse()

	if *traceFile != "" {
		return replayTrace(*traceFile, *traceID, *slowest)
	}

	telCleanup, err := telemetry.Setup(*telAddr, *journal)
	if err != nil {
		return err
	}
	defer telCleanup()

	opt := experiments.DefaultOptions()
	opt.ScenariosPerTypology = *n
	opt.Seed = *seed
	opt.TrainEpisodes = *episodes

	suites, err := experiments.BuildSuites(opt)
	if err != nil {
		return err
	}
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()

	if *mitigated {
		ctrl, err := experiments.TrainGhostCutInSMC(suites, opt)
		if err != nil {
			return err
		}
		f5, err := experiments.Fig5(suites, ctrl, opt, 0)
		if err != nil {
			return err
		}
		if err := w.Write([]string{"t", "sti_lbc_mean", "sti_lbc_sd", "sti_iprism_mean", "sti_iprism_sd"}); err != nil {
			return err
		}
		n := f5.LBC.Len()
		if f5.IPrism.Len() > n {
			n = f5.IPrism.Len()
		}
		for i := 0; i < n; i++ {
			row := []string{f(float64(i) * f5.Dt)}
			row = append(row, seriesAt(f5.LBC.Mean, i), seriesAt(f5.LBC.SD, i))
			row = append(row, seriesAt(f5.IPrism.Mean, i), seriesAt(f5.IPrism.SD, i))
			if err := w.Write(row); err != nil {
				return err
			}
		}
		return nil
	}

	series, err := experiments.Fig4(suites, opt)
	if err != nil {
		return err
	}
	if err := w.Write([]string{"typology", "metric", "population", "t", "mean", "sd", "n"}); err != nil {
		return err
	}
	for _, s := range series {
		for name, pop := range map[string]struct {
			mean, sd []float64
			n        []int
		}{
			"safe":     {s.Safe.Mean, s.Safe.SD, s.Safe.N},
			"accident": {s.Accident.Mean, s.Accident.SD, s.Accident.N},
		} {
			for i := range pop.mean {
				if err := w.Write([]string{
					s.Typology.String(), s.Metric, name,
					f(float64(i) * s.Dt), f(pop.mean[i]), f(pop.sd[i]),
					strconv.Itoa(pop.n[i]),
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// replayTrace renders the wide events of a serving journal as span
// waterfalls: one block per request with its identity, outcome, risk
// annotations, and the server → evaluator → reach span chain laid out on a
// shared time axis.
func replayTrace(path, wantID string, slowest int) error {
	events, err := telemetry.ReadJournalFile(path)
	if err != nil {
		return err
	}
	var wides []trace.WideEvent
	for _, ev := range events {
		if ev.Event != "wide_event" {
			continue
		}
		// The journal flattened the event into Fields with the WideEvent JSON
		// tags, so a marshal round-trip recovers the typed record.
		raw, err := json.Marshal(ev.Fields)
		if err != nil {
			return err
		}
		var w trace.WideEvent
		if err := json.Unmarshal(raw, &w); err != nil {
			return fmt.Errorf("wide event in %s: %w", path, err)
		}
		if wantID == "" || w.TraceID == wantID {
			wides = append(wides, w)
		}
	}
	if len(wides) == 0 {
		if wantID != "" {
			return fmt.Errorf("no wide event with trace %s in %s", wantID, path)
		}
		return fmt.Errorf("no wide events in %s (was the server run with -journal?)", path)
	}
	if slowest > 0 {
		sort.SliceStable(wides, func(i, j int) bool { return wides[i].Seconds > wides[j].Seconds })
		if slowest < len(wides) {
			wides = wides[:slowest]
		}
	}
	for _, w := range wides {
		printWaterfall(w)
	}
	return nil
}

func printWaterfall(w trace.WideEvent) {
	fmt.Printf("trace %s  request %s  %s  status %d  %.3fms\n",
		w.TraceID, w.RequestID, w.Route, w.Status, w.Seconds*1e3)
	if len(w.Attrs) > 0 {
		keys := make([]string, 0, len(w.Attrs))
		for k := range w.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%v", k, w.Attrs[k])
		}
		fmt.Printf("  %s\n", strings.Join(parts, "  "))
	}
	spans := append([]trace.Span(nil), w.Spans...)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartUS < spans[j].StartUS })
	totalUS := int64(w.Seconds * 1e6)
	for _, sp := range spans {
		if end := sp.StartUS + sp.DurUS; end > totalUS {
			totalUS = end
		}
	}
	const width = 40
	for _, sp := range spans {
		bar := [width]byte{}
		for i := range bar {
			bar[i] = ' '
		}
		if totalUS > 0 {
			lo := int(sp.StartUS * width / totalUS)
			hi := int((sp.StartUS + sp.DurUS) * width / totalUS)
			if hi <= lo {
				hi = lo + 1
			}
			for i := lo; i < hi && i < width; i++ {
				bar[i] = '#'
			}
		}
		fmt.Printf("  %-28s %9dus +%8dus |%s|\n", sp.Name, sp.StartUS, sp.DurUS, bar[:])
	}
	fmt.Println()
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

func seriesAt(xs []float64, i int) string {
	if i >= len(xs) {
		return ""
	}
	return f(xs[i])
}
