// Command iprism-gateway fronts a fleet of iprism-serve scoring backends:
// health-checked backend pool, consistent-hash session affinity, retry and
// hedging for idempotent scoring, SSE risk-stream passthrough, and an
// async corpus-job API that fans bulk scoring across the fleet.
//
//	iprism-serve -addr 127.0.0.1:8378 &
//	iprism-serve -addr 127.0.0.1:8379 &
//	iprism-gateway -addr :8377 -backends 127.0.0.1:8378,127.0.0.1:8379
//	curl -s -X POST localhost:8377/v1/score -d @scene.json
//
// The process shuts down gracefully on SIGINT/SIGTERM: probers and job
// workers stop, in-flight proxied requests are answered, SSE proxies are
// cancelled (clients resume elsewhere), then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gateway"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr      = flag.String("addr", ":8377", "listen address (use 127.0.0.1:0 for an ephemeral port)")
		addrFile  = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using :0)")
		backends  = flag.String("backends", "", "comma-separated backend addresses (host:port), required")
		vnodes    = flag.Int("vnodes", 0, "virtual nodes per backend on the session ring (0 = 128)")
		probeIv   = flag.Duration("probe-interval", time.Second, "health-probe interval per backend")
		probeTo   = flag.Duration("probe-timeout", 0, "per-probe timeout (0 = min(interval, 500ms))")
		failThr   = flag.Int("fail-threshold", 0, "consecutive failures before a backend is ejected (0 = 2)")
		attempts  = flag.Int("max-attempts", 0, "max tries per idempotent request across distinct backends (0 = 3)")
		budget    = flag.Float64("retry-budget", 0, "retries+hedges as a fraction of proxied requests (0 = 0.10)")
		noHedge   = flag.Bool("no-hedge", false, "disable p95-delay request hedging")
		timeout   = flag.Duration("timeout", 10*time.Second, "end-to-end proxied request deadline (includes retries)")
		jobWork   = flag.Int("job-workers", 0, "concurrent in-flight job scenes across all jobs (0 = 4)")
		maxJobs   = flag.Int("max-jobs", 0, "retained corpus jobs before submissions are rejected (0 = 64)")
		jobScenes = flag.Int("max-job-scenes", 0, "max scenes in one corpus submission (0 = 100000)")
		journal   = flag.String("journal", "", "append JSONL telemetry events (including proxy wide events) to this file")
		drain     = flag.Duration("drain", 30*time.Second, "graceful shutdown budget before connections are force-closed")
	)
	flag.Parse()
	if *backends == "" {
		log.Fatalf("iprism-gateway: -backends is required (comma-separated host:port list)")
	}

	telemetry.Enable()
	if *journal != "" {
		j, err := telemetry.OpenJournal(*journal)
		if err != nil {
			log.Fatalf("iprism-gateway: journal: %v", err)
		}
		defer j.Close()
		telemetry.SetJournal(j)
	}

	g, err := gateway.New(gateway.Config{
		Backends:       strings.Split(*backends, ","),
		VirtualNodes:   *vnodes,
		ProbeInterval:  *probeIv,
		ProbeTimeout:   *probeTo,
		FailThreshold:  *failThr,
		MaxAttempts:    *attempts,
		RetryBudget:    *budget,
		HedgeOff:       *noHedge,
		RequestTimeout: *timeout,
		JobWorkers:     *jobWork,
		MaxJobs:        *maxJobs,
		MaxJobScenes:   *jobScenes,
		Logf:           log.Printf,
	})
	if err != nil {
		log.Fatalf("iprism-gateway: %v", err)
	}
	if err := g.Start(*addr); err != nil {
		log.Fatalf("iprism-gateway: %v", err)
	}
	log.Printf("iprism-gateway: listening on %s, fronting %s", g.Addr(), *backends)
	if *addrFile != "" {
		// Write-then-rename so pollers never read a partial address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(g.Addr()+"\n"), 0o644); err != nil {
			log.Fatalf("iprism-gateway: addr-file: %v", err)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			log.Fatalf("iprism-gateway: addr-file: %v", err)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	log.Printf("iprism-gateway: %v, draining", got)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := g.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "iprism-gateway: shutdown: %v\n", err)
		os.Exit(1)
	}
	log.Printf("iprism-gateway: drained, exiting")
}
