// Command iprism-scenarios generates the NHTSA-derived safety-critical
// scenario suites, runs the LBC baseline over them, and prints Table I
// (instances, hyperparameters, baseline accident counts).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iprism-scenarios:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n       = flag.Int("n", 100, "scenario instances per typology (paper: 1000)")
		seed    = flag.Int64("seed", 2024, "suite generation seed")
		workers = flag.Int("workers", 0, "parallel episode runners (0 = GOMAXPROCS)")
		out     = flag.String("o", "", "optional path to export the full suite as JSON (the paper publishes its 4810 scenarios)")
	)
	flag.Parse()

	opt := experiments.DefaultOptions()
	opt.ScenariosPerTypology = *n
	opt.Seed = *seed
	if *workers > 0 {
		opt.Workers = *workers
	}

	suites, err := experiments.BuildSuites(opt)
	if err != nil {
		return err
	}
	rows := experiments.TableI(suites)

	fmt.Println("Table I: safety-critical scenario instances and baseline (LBC) accidents")
	fmt.Printf("%-16s %10s %10s   %s\n", "Typology", "Instances", "Accidents", "Hyperparameters")
	for _, r := range rows {
		fmt.Printf("%-16s %10d %10d   %s\n",
			r.Typology, r.Instances, r.Accidents, strings.Join(r.Hyperparameters, ", "))
	}
	fmt.Println("\nPaper (1000 per typology): ghost cut-in 519, lead cut-in 170,")
	fmt.Println("lead slowdown 118, front accident 0 (810 valid), rear-end 770.")

	if *out != "" {
		var all []scenario.Scenario
		for _, s := range suites {
			all = append(all, s.Scenarios...)
		}
		if err := scenario.SaveSuite(all, *out); err != nil {
			return err
		}
		fmt.Printf("\nexported %d scenario instances to %s\n", len(all), *out)
	}
	return nil
}
