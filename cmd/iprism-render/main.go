// Command iprism-render draws street scenes as SVG in the style of the
// paper's Fig. 7: either one of the four case studies (-case) or a step of
// a generated NHTSA scenario (-typology/-id/-step), with the ego's
// reach-tube shaded and actors coloured by STI. With -journal it instead
// plots the training curves (reward/epsilon/loss per episode) recorded in a
// telemetry run journal, e.g. one written by iprism-train -journal.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/actor"
	"repro/internal/agent"
	"repro/internal/dataset"
	"repro/internal/reach"
	"repro/internal/render"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/sti"
	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iprism-render:", err)
		os.Exit(1)
	}
}

var typologyNames = map[string]scenario.Typology{
	"ghost-cut-in":  scenario.GhostCutIn,
	"lead-cut-in":   scenario.LeadCutIn,
	"lead-slowdown": scenario.LeadSlowdown,
	"rear-end":      scenario.RearEnd,
	"roundabout":    scenario.RoundaboutCutIn,
}

func run() error {
	var (
		caseName = flag.String("case", "", "render a Fig. 7 case study: pedestrian|oversized|cluttered|pullout")
		typology = flag.String("typology", "ghost-cut-in", "scenario typology to render")
		id       = flag.Int("id", 0, "scenario instance index")
		step     = flag.Int("step", 50, "simulation step to render (0.1 s each)")
		seed     = flag.Int64("seed", 2024, "scenario seed")
		journal  = flag.String("journal", "", "plot training curves from a JSONL run journal instead of a scene")
		smooth   = flag.Int("smooth", 0, "reward moving-average window for -journal (0 = auto)")
		out      = flag.String("o", "scene.svg", "output SVG path")
	)
	flag.Parse()

	if *journal != "" {
		return renderJournal(*journal, *smooth, *out)
	}

	cfg := reach.DefaultConfig()
	cfg.RecordPoints = true
	eval, err := sti.NewEvaluator(reach.DefaultConfig())
	if err != nil {
		return err
	}

	var scene render.Scene
	if *caseName != "" {
		cs, err := findCase(*caseName)
		if err != nil {
			return err
		}
		scene = render.Scene{
			Map: cs.Map, Ego: cs.Ego, Actors: cs.Actors,
			Risk:  cs.Evaluate(eval),
			Title: cs.Name,
		}
	} else {
		ty, ok := typologyNames[*typology]
		if !ok {
			return fmt.Errorf("unknown typology %q", *typology)
		}
		scns := scenario.GenerateValid(ty, *id+1, *seed)
		if *id >= len(scns) {
			return fmt.Errorf("instance %d unavailable (only %d valid)", *id, len(scns))
		}
		scn := scns[*id]
		w, err := scn.Build()
		if err != nil {
			return err
		}
		driver := agent.NewLBC(agent.DefaultLBCConfig())
		driver.Reset()
		for i := 0; i < *step; i++ {
			obs := w.Observe()
			if ev := w.Advance(driver.Act(obs)); ev.EgoCollision {
				fmt.Fprintf(os.Stderr, "note: collision at step %d; rendering that frame\n", i)
				break
			}
		}
		obs := w.Observe()
		scene = render.Scene{
			Map: w.Map, Ego: obs.Ego, Actors: obs.Actors,
			Risk:  eval.EvaluateWithPrediction(w.Map, obs.Ego, obs.Actors),
			Title: fmt.Sprintf("%s #%d @ t=%.1fs", ty, scn.ID, obs.Time),
		}
	}

	// Reach-tube for the rendered frame.
	trajs := actor.PredictAll(scene.Actors, cfg.NumSlices(), cfg.SliceDt)
	obs := reach.BuildObstacles(scene.Actors, trajs, cfg)
	tube := reach.Compute(scene.Map, obs.Collide(), scene.Ego, cfg)
	scene.Tube = &tube

	svg := render.SVG(scene, render.Options{Window: 70})
	if err := os.WriteFile(*out, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(svg))
	return nil
}

// renderJournal plots per-episode training curves from a telemetry JSONL
// journal (smc.episode events) and writes them as SVG.
func renderJournal(path string, smooth int, out string) error {
	events, err := telemetry.ReadJournalFile(path)
	if err != nil {
		return err
	}
	points := render.EpisodePoints(events)
	svg, err := render.CurvesSVG(points, render.CurveOptions{Smooth: smooth})
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := os.WriteFile(out, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d episodes, %d bytes)\n", out, len(points), len(svg))
	return nil
}

func findCase(name string) (dataset.CaseStudy, error) {
	for _, cs := range dataset.CaseStudies() {
		if strings.Contains(strings.ReplaceAll(cs.Name, " ", ""), strings.ToLower(name)) ||
			strings.Contains(cs.Name, strings.ToLower(name)) {
			return cs, nil
		}
	}
	return dataset.CaseStudy{}, fmt.Errorf("unknown case %q (want pedestrian|oversized|cluttered|pulling)", name)
}

var _ sim.Driver = (*agent.LBC)(nil)
