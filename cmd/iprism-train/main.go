// Command iprism-train trains a Safety-hazard Mitigation Controller for one
// scenario typology (selecting the highest-average-STI accident scenario of
// a generated suite, as in §IV-B1) and saves the trained controller as
// JSON for later deployment.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/agent"
	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/smc"
	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iprism-train:", err)
		os.Exit(1)
	}
}

var typologyNames = map[string]scenario.Typology{
	"ghost-cut-in":  scenario.GhostCutIn,
	"lead-cut-in":   scenario.LeadCutIn,
	"lead-slowdown": scenario.LeadSlowdown,
	"rear-end":      scenario.RearEnd,
}

func run() error {
	var (
		typology   = flag.String("typology", "ghost-cut-in", "one of: "+strings.Join(names(), ", "))
		n          = flag.Int("n", 60, "suite size used to select the training scenario")
		episodes   = flag.Int("episodes", 100, "training episodes (paper: 100)")
		seed       = flag.Int64("seed", 2024, "generation and training seed")
		out        = flag.String("o", "smc.json", "output path for the trained controller")
		noSTI      = flag.Bool("no-sti", false, "train the w/o-STI reward ablation")
		telAddr    = flag.String("telemetry", "", "serve expvar and pprof on this address (e.g. localhost:6060)")
		journal    = flag.String("journal", "", "write a JSONL telemetry journal (per-episode reward/epsilon/loss) to this path")
		journalMax = flag.Int64("journal-max-bytes", 64<<20, "rotate the journal to <path>.1 past this size (0 = unbounded)")
		epWorkers  = flag.Int("episode-workers", 1, "parallel episode workers (1 = historical serial trainer; N>1 is run-to-run deterministic)")
		ckPath     = flag.String("checkpoint", "", "write atomic training checkpoints to this path")
		ckEvery    = flag.Int("checkpoint-every", 25, "episodes between checkpoints")
		resume     = flag.Bool("resume", false, "resume from -checkpoint if it exists (continues the epsilon/episode schedule)")
	)
	flag.Parse()

	ty, ok := typologyNames[*typology]
	if !ok {
		return fmt.Errorf("unknown typology %q (want one of %s)", *typology, strings.Join(names(), ", "))
	}
	telCleanup, err := telemetry.SetupRotating(*telAddr, *journal, *journalMax)
	if err != nil {
		return err
	}
	defer telCleanup()

	opt := experiments.DefaultOptions()
	opt.ScenariosPerTypology = *n
	opt.Seed = *seed
	opt.TrainEpisodes = *episodes

	fmt.Printf("selecting the training scenario from %d %s instances...\n", *n, ty)
	scns := scenario.GenerateValid(ty, *n, *seed)
	lbc := func() sim.Driver { return agent.NewLBC(agent.DefaultLBCConfig()) }

	// Find crash scenarios under the baseline and pick the first (the
	// experiments package does full STI-based selection; the CLI favours a
	// quick crash scan plus STI ranking of the top candidates).
	var crashes []scenario.Scenario
	for _, s := range scns {
		w, err := s.Build()
		if err != nil {
			return err
		}
		if out := sim.Run(w, lbc(), nil, sim.RunConfig{MaxSteps: s.MaxSteps}); out.Collision {
			crashes = append(crashes, s)
		}
	}
	if len(crashes) == 0 {
		return fmt.Errorf("no baseline accidents in %d instances; increase -n", *n)
	}
	fmt.Printf("baseline crashed in %d/%d instances; training on scenario #%d for %d episodes...\n",
		len(crashes), len(scns), crashes[0].ID, *episodes)

	cfg := smc.DefaultConfig()
	cfg.UseSTI = !*noSTI
	cfg.DDQN.Seed = *seed
	cfg.DDQN.EpsDecaySteps = *episodes * 100
	cfg.EpisodeWorkers = *epWorkers

	// SIGINT/SIGTERM stop training at the next episode boundary; the final
	// checkpoint (when -checkpoint is set) carries the exact state to
	// continue from with -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// After the first signal cancels ctx, restore default handling so a
	// second signal kills a run stuck mid-episode.
	context.AfterFunc(ctx, stop)
	trainOpts := smc.TrainOptions{
		CheckpointPath:  *ckPath,
		CheckpointEvery: *ckEvery,
		Resume:          *resume,
	}
	if *resume && *ckPath == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	ctrl, stats, err := smc.TrainContext(ctx, crashes[:1], lbc, cfg, *episodes, trainOpts)
	if err != nil {
		return err
	}
	if stats.StartEpisode > 0 {
		fmt.Printf("resumed from episode %d\n", stats.StartEpisode)
	}
	if stats.Interrupted {
		fmt.Printf("interrupted after %d episodes", stats.Episodes)
		if *ckPath != "" {
			fmt.Printf("; checkpoint saved to %s — rerun with -resume to continue", *ckPath)
		}
		fmt.Println()
	} else {
		fmt.Printf("trained: %d episodes, %d training collisions, final epsilon %.2f\n",
			stats.Episodes, stats.Collisions, stats.FinalEpsilon)
	}

	if err := ctrl.Save(*out); err != nil {
		return err
	}
	fmt.Printf("saved controller to %s\n", *out)
	if stats.Interrupted {
		return nil
	}

	// Quick self-evaluation on the crash set.
	saved := 0
	for _, s := range crashes {
		w, err := s.Build()
		if err != nil {
			return err
		}
		if out := sim.Run(w, lbc(), ctrl.CloneForRun(), sim.RunConfig{MaxSteps: s.MaxSteps}); !out.Collision {
			saved++
		}
	}
	fmt.Printf("mitigation check: %d/%d previously fatal scenarios now collision-free\n", saved, len(crashes))
	return nil
}

func names() []string {
	out := make([]string, 0, len(typologyNames))
	for n := range typologyNames {
		out = append(out, n)
	}
	return out
}
