// Command iprism-dataset reproduces the real-world-dataset study of §V-D on
// the synthetic Argoverse-analogue corpus: the STI distribution percentiles
// of Fig. 6 and, with -cases, the four mined case studies of Fig. 7.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iprism-dataset:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		logs  = flag.Int("logs", 40, "number of synthetic drive logs")
		steps = flag.Int("steps", 150, "steps per log (0.1 s each)")
		seed  = flag.Int64("seed", 1, "corpus seed")
		cases = flag.Bool("cases", false, "also evaluate the Fig. 7 case studies")
	)
	flag.Parse()

	opt := experiments.DefaultOptions()
	corpus := dataset.DefaultCorpusConfig()
	corpus.Logs = *logs
	corpus.Steps = *steps
	corpus.Seed = *seed

	res, err := experiments.Fig6(corpus, opt)
	if err != nil {
		return err
	}
	fmt.Println("Fig. 6: STI characterisation of the synthetic real-world corpus")
	fmt.Printf("%-18s %8s %8s %8s %8s\n", "", "p50", "p75", "p90", "p99")
	fmt.Printf("%-18s %8.3f %8.3f %8.3f %8.3f\n", "actor STI",
		res.Actor.P50, res.Actor.P75, res.Actor.P90, res.Actor.P99)
	fmt.Printf("%-18s %8.3f %8.3f %8.3f %8.3f\n", "combined STI",
		res.Combined.P50, res.Combined.P75, res.Combined.P90, res.Combined.P99)
	fmt.Printf("actor STI exactly zero: %.0f%% of %d samples\n",
		res.ActorZeroFraction*100, res.Samples)
	fmt.Println("\nPaper (Argoverse): actor 0 / 0 / 0.020 / 0.33; combined 0.09 / 0.29 / 0.52 / 0.93.")

	if *cases {
		fmt.Println("\nFig. 7: mined safety-critical case studies")
		caseRes, err := experiments.Fig7(opt)
		if err != nil {
			return err
		}
		for _, c := range caseRes {
			fmt.Printf("%-20s key-actor STI %.2f, combined %.2f, per-actor %v\n",
				c.Name, c.KeySTI, c.Combined, formatSlice(c.PerActor))
		}
		fmt.Println("\nPaper: pedestrian 0.72, oversized 0.69, entering actor 0.35.")
	}
	return nil
}

func formatSlice(xs []float64) string {
	out := "["
	for i, x := range xs {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.2f", x)
	}
	return out + "]"
}
