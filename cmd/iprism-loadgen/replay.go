package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/scenario"
	"repro/internal/scene"
	"repro/internal/telemetry"
)

// Session-replay mode measures the serving path the warm-start engine was
// built for: each worker opens a session and streams a recorded
// stop-and-go trace through /v1/sessions/{id}/observe tick by tick, with
// strictly increasing timestamps, then closes the session and starts over.
// Against a warm-started server every tick after the first revalidates the
// previous expansion; against a cold server every tick recomputes. The
// p50 gap between a -warm=true and a -warm=false run is the engine's
// measured win (DESIGN.md §11).

type replayOpts struct {
	base        string
	bodies      [][]byte // one observe body per tick, Time pre-stamped
	actors      int
	concurrency int
	observes    int64 // total observe budget across all workers
	duration    time.Duration
	timeout     time.Duration
	minRate     float64
	warm        bool
	selfServe   bool
	outDir      string
}

// replayResults is the session-replay block of a kind-"session-replay"
// snapshot.
type replayResults struct {
	Workers     int  `json:"workers"`
	TicksPerRun int  `json:"ticks_per_run"`
	Actors      int  `json:"actors"`
	Sessions    int  `json:"sessions"`
	Warm        bool `json:"warm"`
}

// replayBodies renders the canonical stop-and-go session trace to observe
// request bodies, one per tick, timestamps already strictly increasing.
func replayBodies(actors, ticks int) ([][]byte, error) {
	m, trace := scenario.StopAndGoSession(actors, ticks)
	bodies := make([][]byte, len(trace))
	for t, tick := range trace {
		sc, err := scene.FromParts(m, tick.Ego, tick.Actors, float64(t)*0.1)
		if err != nil {
			return nil, err
		}
		if bodies[t], err = scene.Encode(sc); err != nil {
			return nil, err
		}
	}
	return bodies, nil
}

func runSessionReplay(o replayOpts) error {
	client := &http.Client{
		Timeout: o.timeout,
		Transport: &http.Transport{
			MaxIdleConns:        o.concurrency * 2,
			MaxIdleConnsPerHost: o.concurrency * 2,
		},
	}

	deadline := time.Time{}
	total := o.observes
	if o.duration > 0 {
		deadline = time.Now().Add(o.duration)
		total = 1 << 62
	}

	var next, ok, rejected, errs, sessions int64
	done := func() bool {
		if atomic.AddInt64(&next, 1)-1 >= total {
			return true
		}
		return !deadline.IsZero() && time.Now().After(deadline)
	}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < o.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				id, _, err := fleetCreateSession(client, o.base)
				if err != nil {
					fmt.Fprintf(os.Stderr, "loadgen: session create: %v\n", err)
					atomic.AddInt64(&errs, 1)
					return
				}
				atomic.AddInt64(&sessions, 1)
				finished := false
				for _, body := range o.bodies {
					if done() {
						finished = true
						break
					}
					status, _, err := fleetPost(client, o.base+"/v1/sessions/"+id+"/observe", body)
					switch {
					case err != nil:
						telErrors.Inc()
						atomic.AddInt64(&errs, 1)
						fmt.Fprintf(os.Stderr, "loadgen: observe error: %v\n", err)
					case status/100 == 2:
						telOK.Inc()
						atomic.AddInt64(&ok, 1)
					case status == http.StatusTooManyRequests:
						telRejected.Inc()
						atomic.AddInt64(&rejected, 1)
					default:
						telErrors.Inc()
						atomic.AddInt64(&errs, 1)
						fmt.Fprintf(os.Stderr, "loadgen: observe status %d\n", status)
					}
				}
				replayDeleteSession(client, o.base, id)
				if finished {
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := telemetry.Default().Snapshot()
	lat := snap.Histograms["loadgen.request.seconds"]
	rate := float64(ok) / elapsed.Seconds()
	mode := "cold"
	if o.warm {
		mode = "warm"
	}
	fmt.Printf("loadgen[session-replay %s]: %d observes over %d sessions (%d ticks/session, %d actors) in %s\n",
		mode, ok+rejected+errs, sessions, len(o.bodies), o.actors, elapsed.Round(time.Millisecond))
	fmt.Printf("  ok %d   429 %d   errors %d\n", ok, rejected, errs)
	fmt.Printf("  latency p50 %s  p95 %s  p99 %s  max %s\n",
		fmtSec(lat.P50), fmtSec(lat.P95), fmtSec(lat.P99), fmtSec(lat.Max))
	fmt.Printf("  throughput %.0f observes/sec\n", rate)

	if o.outDir != "" {
		var rep report
		rep.Kind = "session-replay"
		rep.Date = time.Now().Format(time.RFC3339)
		rep.GoVersion = runtime.Version()
		rep.GOOS, rep.GOARCH, rep.NumCPU = runtime.GOOS, runtime.GOARCH, runtime.NumCPU()
		rep.Config.Typology = "stop-and-go-session"
		rep.Config.Scenes = len(o.bodies)
		rep.Config.Requests = int(ok + rejected + errs)
		rep.Config.Concurrency = o.concurrency
		rep.Config.Batch = 1
		rep.Config.SelfServe = o.selfServe
		rep.Config.SharedExpansion = o.selfServe
		rep.Results.OK = ok
		rep.Results.Rejected = rejected
		rep.Results.Errors = errs
		rep.Results.ScenesScored = ok
		rep.Results.Seconds = elapsed.Seconds()
		rep.Results.ScenesPerSec = rate
		rep.Replay = &replayResults{
			Workers:     o.concurrency,
			TicksPerRun: len(o.bodies),
			Actors:      o.actors,
			Sessions:    int(sessions),
			Warm:        o.warm,
		}
		rep.Telemetry = snap
		path := filepath.Join(o.outDir, "BENCH_serve_"+time.Now().UTC().Format("2006-01-02T150405Z")+".json")
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}

	if errs > 0 {
		return fmt.Errorf("%d observe(s) failed with errors or unexpected statuses", errs)
	}
	if ok == 0 {
		return fmt.Errorf("no observe succeeded (%d rejected)", rejected)
	}
	if o.minRate > 0 && rate < o.minRate {
		return fmt.Errorf("throughput %.0f observes/sec below required %.0f", rate, o.minRate)
	}
	return nil
}

// replayDeleteSession closes a session so the server can recycle its
// warm-start state; best-effort (a leaked session only costs memory until
// the run's server goes away).
func replayDeleteSession(client *http.Client, base, id string) {
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+id, nil)
	if err != nil {
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		return
	}
	resp.Body.Close()
}
