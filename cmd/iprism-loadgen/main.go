// Command iprism-loadgen drives the iprism-serve scoring API with
// scenario-derived scenes and reports client-observed latency percentiles,
// throughput, and error rates. It is the load harness behind the serving
// capacity numbers in DESIGN.md and the smoke stage of scripts/verify.sh.
//
//	iprism-loadgen -target http://localhost:8377 -requests 1000 -concurrency 8
//	iprism-loadgen -self-serve -duration 10s -batch 16
//
// Any response that is neither 2xx nor a deliberate 429 backpressure
// rejection fails the run (exit 1), as does a measured scoring rate below
// -min-rate. With -o, a BENCH_serve_<date>.json snapshot (kind "serve") is
// written for cmd/iprism-benchdiff's serve-kind perf gate.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/scenario"
	"repro/internal/scene"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

var (
	telReqSecs  = telemetry.NewHistogram("loadgen.request.seconds", telemetry.LatencyBuckets())
	telOK       = telemetry.NewCounter("loadgen.ok")
	telRejected = telemetry.NewCounter("loadgen.rejected")
	telErrors   = telemetry.NewCounter("loadgen.errors")
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iprism-loadgen:", err)
		os.Exit(1)
	}
}

// report is the BENCH_serve_<date>.json schema: the shared bench envelope
// (date/toolchain/kind/telemetry) plus the load shape and client-side
// results.
type report struct {
	Kind      string `json:"kind"`
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	Config struct {
		Typology    string `json:"typology"`
		Scenes      int    `json:"scenes"`
		Seed        int64  `json:"seed"`
		Requests    int    `json:"requests"`
		Concurrency int    `json:"concurrency"`
		Batch       int    `json:"batch"`
		RPS         int    `json:"rps"`
		SelfServe   bool   `json:"self_serve"`
		// SharedExpansion records the self-serve server's engine choice;
		// false for -target runs, whose server config is not observable.
		SharedExpansion bool `json:"shared_expansion"`
	} `json:"config"`

	Results struct {
		OK           int64   `json:"ok"`
		Rejected     int64   `json:"rejected_429"`
		Errors       int64   `json:"errors"`
		ScenesScored int64   `json:"scenes_scored"`
		Seconds      float64 `json:"seconds"`
		ScenesPerSec float64 `json:"scenes_per_sec"`
	} `json:"results"`

	// Fleet carries the gateway-mode extras (affinity and corpus-job
	// outcomes); nil for standalone kind-"serve" runs.
	Fleet *fleetResults `json:"fleet,omitempty"`

	// Replay carries the -session-replay extras (session/tick shape and
	// whether the server warm-started); nil for other kinds.
	Replay *replayResults `json:"replay,omitempty"`

	Telemetry telemetry.Snapshot `json:"telemetry"`
}

func run() error {
	var (
		target      = flag.String("target", "", "base URL of a running iprism-serve (e.g. http://localhost:8377)")
		selfServe   = flag.Bool("self-serve", false, "start an in-process server on an ephemeral port instead of -target")
		requests    = flag.Int("requests", 300, "total requests to send (ignored when -duration is set)")
		duration    = flag.Duration("duration", 0, "send for this long instead of a fixed request count")
		concurrency = flag.Int("concurrency", 8, "concurrent client connections")
		rps         = flag.Int("rps", 0, "target aggregate requests/sec (0 = unthrottled)")
		batch       = flag.Int("batch", 0, "scenes per request via /v1/score/batch (0 or 1 = single-scene /v1/score)")
		typology    = flag.String("typology", "lead-slowdown", "scenario typology for generated scenes")
		scenes      = flag.Int("scenes", 60, "distinct fixture scenes to cycle through")
		seed        = flag.Int64("seed", 2024, "fixture generation seed")
		minRate     = flag.Float64("min-rate", 0, "fail if scored scenes/sec falls below this (0 = off)")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request client timeout")
		topSlow     = flag.Int("slowest", 5, "slowest requests to report with their trace IDs (0 = off)")
		shared      = flag.Bool("shared-expansion", true, "self-serve server scores with the shared-expansion engine (false = legacy per-actor tubes)")
		warm        = flag.Bool("warm", true, "self-serve server warm-starts session scoring across ticks (needs -shared-expansion; stateless scoring is unaffected)")
		outDir      = flag.String("o", "", "directory for a BENCH_serve_<date>.json snapshot (empty = skip)")

		sessionReplay = flag.Bool("session-replay", false, "replay recorded stop-and-go session traces tick by tick through /v1/sessions observe instead of stateless scoring")
		replayTicks   = flag.Int("replay-ticks", 60, "session-replay: ticks per replayed session")
		replayActors  = flag.Int("replay-actors", 12, "session-replay: actors in the replayed trace (min 12)")

		gatewayMode = flag.Bool("gateway", false, "fleet mode: -target is an iprism-gateway; drives sticky sessions plus stateless scoring and writes kind-\"fleet\" snapshots")
		sessWorkers = flag.Int("session-workers", 0, "fleet mode: workers each driving one sticky session via observe (0 = half of -concurrency, -1 = none)")
		maxErrRate  = flag.Float64("max-error-rate", 0, "fail if the error fraction of all requests exceeds this (0 = off)")
		maxMoves    = flag.Int("max-session-moves", -1, "fleet mode: fail if any session changes X-Backend more than this many times (-1 = off; failover costs one move)")
		jobScenes   = flag.Int("job-scenes", 0, "fleet mode: also submit a corpus job of this many scenes and wait for its results (0 = off)")
	)
	flag.Parse()

	if (*target == "") == !*selfServe {
		return fmt.Errorf("exactly one of -target or -self-serve is required")
	}
	if *gatewayMode && *selfServe {
		return fmt.Errorf("-gateway needs a -target gateway, not -self-serve")
	}
	if *sessionReplay && *gatewayMode {
		return fmt.Errorf("-session-replay and -gateway are mutually exclusive")
	}
	telemetry.Enable()

	typ, err := scenario.ParseTypology(*typology)
	if err != nil {
		return err
	}
	fixtures, err := scenario.Fixtures(typ, *scenes, *seed)
	if err != nil {
		return err
	}
	bodies, perReq, endpoint, err := encodeBodies(fixtures, *batch)
	if err != nil {
		return err
	}

	if *gatewayMode {
		return runFleet(fleetOpts{
			base:           *target,
			fixtures:       fixtures,
			scoreBodies:    bodies,
			scoreEndpoint:  endpoint,
			perReq:         perReq,
			concurrency:    *concurrency,
			sessionWorkers: *sessWorkers,
			requests:       int64(*requests),
			duration:       *duration,
			rps:            *rps,
			timeout:        *timeout,
			minRate:        *minRate,
			maxErrRate:     *maxErrRate,
			maxMoves:       *maxMoves,
			jobScenes:      *jobScenes,
			outDir:         *outDir,
			typology:       typ.String(),
			scenes:         *scenes,
			seed:           *seed,
		})
	}

	base := *target
	if *selfServe {
		srv, err := server.New(server.Config{RequestTimeout: *timeout, SharedExpansion: *shared, WarmStart: *warm})
		if err != nil {
			return err
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			return err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		base = "http://" + srv.Addr()
		fmt.Printf("loadgen: self-serving on %s\n", base)
	}

	if *sessionReplay {
		replay, err := replayBodies(*replayActors, *replayTicks)
		if err != nil {
			return err
		}
		return runSessionReplay(replayOpts{
			base:        base,
			bodies:      replay,
			actors:      *replayActors,
			concurrency: *concurrency,
			observes:    int64(*requests),
			duration:    *duration,
			timeout:     *timeout,
			minRate:     *minRate,
			warm:        *selfServe && *shared && *warm,
			selfServe:   *selfServe,
			outDir:      *outDir,
		})
	}
	url := base + endpoint

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *concurrency * 2,
			MaxIdleConnsPerHost: *concurrency * 2,
		},
	}

	// Pacing: with -rps, a central ticker feeds request slots; workers block
	// on it so the aggregate rate holds regardless of concurrency.
	var pace <-chan time.Time
	if *rps > 0 {
		t := time.NewTicker(time.Second / time.Duration(*rps))
		defer t.Stop()
		pace = t.C
	}

	deadline := time.Time{}
	total := int64(*requests)
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
		total = 1 << 62 // bounded by the deadline instead
	}

	var next, ok, rejected, errs, scored int64
	slow := &slowTracker{k: *topSlow}
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&next, 1) - 1
				if i >= total || (!deadline.IsZero() && time.Now().After(deadline)) {
					return
				}
				if pace != nil {
					<-pace
				}
				reqStart := time.Now()
				status, tid, err := post(client, url, bodies[i%int64(len(bodies))])
				slow.note(time.Since(reqStart).Seconds(), tid, status)
				switch {
				case err != nil:
					telErrors.Inc()
					atomic.AddInt64(&errs, 1)
					fmt.Fprintf(os.Stderr, "loadgen: request error: %v\n", err)
				case status/100 == 2:
					telOK.Inc()
					atomic.AddInt64(&ok, 1)
					atomic.AddInt64(&scored, int64(perReq))
				case status == http.StatusTooManyRequests:
					telRejected.Inc()
					atomic.AddInt64(&rejected, 1)
				default:
					telErrors.Inc()
					atomic.AddInt64(&errs, 1)
					fmt.Fprintf(os.Stderr, "loadgen: unexpected status %d\n", status)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := telemetry.Default().Snapshot()
	lat := snap.Histograms["loadgen.request.seconds"]
	rate := float64(scored) / elapsed.Seconds()
	fmt.Printf("loadgen: %s %d scenes/request x %d requests in %s\n",
		endpoint, perReq, ok+rejected+errs, elapsed.Round(time.Millisecond))
	fmt.Printf("  ok %d   429 %d   errors %d\n", ok, rejected, errs)
	fmt.Printf("  latency p50 %s  p95 %s  p99 %s  max %s\n",
		fmtSec(lat.P50), fmtSec(lat.P95), fmtSec(lat.P99), fmtSec(lat.Max))
	fmt.Printf("  throughput %.0f scored scenes/sec\n", rate)
	if rs := slow.slowest(); len(rs) > 0 {
		// The trace IDs resolve server-side: /debug/requests?trace_id=…, the
		// journal's wide events, or iprism-risktrace -trace <journal>.
		fmt.Printf("  slowest requests:\n")
		for _, r := range rs {
			fmt.Printf("    %-10s status %d  trace %s\n",
				time.Duration(r.seconds*float64(time.Second)).Round(time.Microsecond), r.status, r.traceID)
		}
	}

	if *outDir != "" {
		var rep report
		rep.Kind = "serve"
		rep.Date = time.Now().Format(time.RFC3339)
		rep.GoVersion = runtime.Version()
		rep.GOOS, rep.GOARCH, rep.NumCPU = runtime.GOOS, runtime.GOARCH, runtime.NumCPU()
		rep.Config.Typology = typ.String()
		rep.Config.Scenes = *scenes
		rep.Config.Seed = *seed
		rep.Config.Requests = int(ok + rejected + errs)
		rep.Config.Concurrency = *concurrency
		rep.Config.Batch = perReq
		rep.Config.RPS = *rps
		rep.Config.SelfServe = *selfServe
		rep.Config.SharedExpansion = *selfServe && *shared
		rep.Results.OK = ok
		rep.Results.Rejected = rejected
		rep.Results.Errors = errs
		rep.Results.ScenesScored = scored
		rep.Results.Seconds = elapsed.Seconds()
		rep.Results.ScenesPerSec = rate
		rep.Telemetry = snap
		path := filepath.Join(*outDir, "BENCH_serve_"+time.Now().UTC().Format("2006-01-02T150405Z")+".json")
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}

	if errs > 0 {
		return fmt.Errorf("%d request(s) failed with errors or unexpected statuses", errs)
	}
	if ok == 0 {
		return fmt.Errorf("no request succeeded (%d rejected)", rejected)
	}
	if *minRate > 0 && rate < *minRate {
		return fmt.Errorf("throughput %.0f scenes/sec below required %.0f", rate, *minRate)
	}
	return nil
}

// encodeBodies pre-marshals the request bodies: one scene per body for the
// single endpoint, or batches cycling through the fixtures.
func encodeBodies(fixtures []scene.Scene, batch int) (bodies [][]byte, perReq int, endpoint string, err error) {
	if batch <= 1 {
		bodies = make([][]byte, len(fixtures))
		for i, sc := range fixtures {
			if bodies[i], err = scene.Encode(sc); err != nil {
				return nil, 0, "", err
			}
		}
		return bodies, 1, "/v1/score", nil
	}
	// As many distinct batches as fixtures, each a rotation of the pool.
	for off := 0; off < len(fixtures); off++ {
		req := server.BatchRequest{Scenes: make([]scene.Scene, batch)}
		for j := 0; j < batch; j++ {
			req.Scenes[j] = fixtures[(off+j)%len(fixtures)]
		}
		raw, err := json.Marshal(req)
		if err != nil {
			return nil, 0, "", err
		}
		bodies = append(bodies, raw)
	}
	return bodies, batch, "/v1/score/batch", nil
}

// post sends one request stamped with a fresh X-Trace-Id so every scored
// scene is resolvable server-side (/debug/requests, journal wide events,
// /metrics exemplars). It returns the status and the trace ID it minted.
func post(client *http.Client, url string, body []byte) (int, string, error) {
	tid := trace.NewID().String()
	t := telReqSecs.Start()
	defer t.Stop()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, tid, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", tid)
	resp, err := client.Do(req)
	if err != nil {
		return 0, tid, err
	}
	defer resp.Body.Close()
	// Drain so the connection is reusable.
	var sink [512]byte
	for {
		if _, err := resp.Body.Read(sink[:]); err != nil {
			break
		}
	}
	return resp.StatusCode, tid, nil
}

// slowTracker retains the k slowest requests so their trace IDs can be
// printed after the run and resolved against the server's flight recorder.
type slowTracker struct {
	mu sync.Mutex
	k  int
	rs []slowReq
}

type slowReq struct {
	seconds float64
	traceID string
	status  int
}

func (s *slowTracker) note(seconds float64, traceID string, status int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rs = append(s.rs, slowReq{seconds, traceID, status})
	sort.Slice(s.rs, func(i, j int) bool { return s.rs[i].seconds > s.rs[j].seconds })
	if len(s.rs) > s.k {
		s.rs = s.rs[:s.k]
	}
}

func (s *slowTracker) slowest() []slowReq {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]slowReq(nil), s.rs...)
}

func fmtSec(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
