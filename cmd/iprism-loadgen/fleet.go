package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/scene"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// Fleet mode drives an iprism-gateway the way a deployment would: a pool
// of sticky sessions streaming observations (the REACT monitoring loop),
// stateless scoring traffic spread across the fleet, and optionally one
// bulk corpus job riding along. On top of the standalone mode's error/rate
// gates it asserts session affinity: every observe response carries
// X-Backend, and a session whose backend changes more than
// -max-session-moves times (failover legitimately costs one move) fails
// the run.

type fleetOpts struct {
	base     string
	fixtures []scene.Scene
	// scoreBodies/scoreEndpoint/perReq carry the standalone mode's -batch
	// encoding: the stateless score workers reuse it, so a fleet run can
	// amortize the gateway hop over /v1/score/batch exactly like a direct
	// run would. Session observes are always single scenes (one tick each).
	scoreBodies    [][]byte
	scoreEndpoint  string
	perReq         int
	concurrency    int
	sessionWorkers int
	requests       int64
	duration       time.Duration
	rps            int
	timeout        time.Duration
	minRate        float64
	maxErrRate     float64
	maxMoves       int
	jobScenes      int
	outDir         string
	typology       string
	scenes         int
	seed           int64
}

// fleetResults is the fleet-specific block of a kind-"fleet" snapshot.
type fleetResults struct {
	Backends          int     `json:"backends"`
	SessionWorkers    int     `json:"session_workers"`
	Sessions          int     `json:"sessions"`
	SessionMovesMax   int     `json:"session_moves_max"`
	SessionMovesTotal int     `json:"session_moves_total"`
	JobScenes         int     `json:"job_scenes"`
	JobCompleted      int     `json:"job_completed"`
	JobFailed         int     `json:"job_failed"`
	JobSeconds        float64 `json:"job_seconds"`
}

func runFleet(o fleetOpts) error {
	if o.sessionWorkers < 0 {
		o.sessionWorkers = 0 // explicit: pure scoring traffic, no sessions
	} else if o.sessionWorkers == 0 {
		o.sessionWorkers = o.concurrency / 2
	}
	if o.sessionWorkers > o.concurrency {
		o.sessionWorkers = o.concurrency
	}
	scoreWorkers := o.concurrency - o.sessionWorkers

	client := &http.Client{
		Timeout: o.timeout,
		Transport: &http.Transport{
			MaxIdleConns:        o.concurrency * 2,
			MaxIdleConnsPerHost: o.concurrency * 2,
		},
	}

	var pace <-chan time.Time
	if o.rps > 0 {
		t := time.NewTicker(time.Second / time.Duration(o.rps))
		defer t.Stop()
		pace = t.C
	}
	deadline := time.Time{}
	total := o.requests
	if o.duration > 0 {
		deadline = time.Now().Add(o.duration)
		total = 1 << 62
	}

	var next, ok, rejected, errs, scored int64
	done := func() bool {
		if atomic.AddInt64(&next, 1)-1 >= total {
			return true
		}
		return !deadline.IsZero() && time.Now().After(deadline)
	}
	account := func(status int, err error, scenes int) {
		switch {
		case err != nil:
			telErrors.Inc()
			atomic.AddInt64(&errs, 1)
			fmt.Fprintf(os.Stderr, "loadgen: request error: %v\n", err)
		case status/100 == 2:
			telOK.Inc()
			atomic.AddInt64(&ok, 1)
			atomic.AddInt64(&scored, int64(scenes))
		case status == http.StatusTooManyRequests:
			telRejected.Inc()
			atomic.AddInt64(&rejected, 1)
		default:
			telErrors.Inc()
			atomic.AddInt64(&errs, 1)
			fmt.Fprintf(os.Stderr, "loadgen: unexpected status %d\n", status)
		}
	}

	// Per-session affinity log: how many times each session's X-Backend
	// changed after creation, and which backends served anything at all.
	moves := make([]int, o.sessionWorkers)
	var backendsSeen sync.Map

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < o.sessionWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id, backend, err := fleetCreateSession(client, o.base)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: session create: %v\n", err)
				atomic.AddInt64(&errs, 1)
				return
			}
			backendsSeen.Store(backend, true)
			// Each worker replays its fixture scene as a tick stream. Session
			// observe times must be strictly increasing, so the scene is
			// re-encoded with an advancing timestamp rather than sent verbatim.
			sc := o.fixtures[w%len(o.fixtures)]
			for tick := 0; !done(); tick++ {
				if pace != nil {
					<-pace
				}
				sc.Time = float64(tick) * 0.1
				body, err := scene.Encode(sc)
				if err != nil {
					account(0, err, 1)
					continue
				}
				status, served, err := fleetPost(client, o.base+"/v1/sessions/"+id+"/observe", body)
				account(status, err, 1)
				if err == nil && served != "" && served != backend {
					moves[w]++
					backend = served
					backendsSeen.Store(served, true)
				}
			}
		}(w)
	}
	for w := 0; w < scoreWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(w); !done(); i++ {
				if pace != nil {
					<-pace
				}
				status, served, err := fleetPost(client, o.base+o.scoreEndpoint, o.scoreBodies[i%int64(len(o.scoreBodies))])
				account(status, err, o.perReq)
				if served != "" {
					backendsSeen.Store(served, true)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	totalReqs := ok + rejected + errs
	movesTotal, movesMax := 0, 0
	for _, m := range moves {
		movesTotal += m
		if m > movesMax {
			movesMax = m
		}
	}
	nBackends := 0
	backendsSeen.Range(func(_, _ any) bool { nBackends++; return true })

	snap := telemetry.Default().Snapshot()
	lat := snap.Histograms["loadgen.request.seconds"]
	rate := float64(scored) / elapsed.Seconds()
	errRate := 0.0
	if totalReqs > 0 {
		errRate = float64(errs) / float64(totalReqs)
	}
	fmt.Printf("loadgen[fleet]: %d requests in %s across %d backend(s) (%d session + %d score workers)\n",
		totalReqs, elapsed.Round(time.Millisecond), nBackends, o.sessionWorkers, scoreWorkers)
	fmt.Printf("  ok %d   429 %d   errors %d (%.2f%%)\n", ok, rejected, errs, 100*errRate)
	fmt.Printf("  latency p50 %s  p95 %s  p99 %s  max %s\n",
		fmtSec(lat.P50), fmtSec(lat.P95), fmtSec(lat.P99), fmtSec(lat.Max))
	fmt.Printf("  throughput %.0f scored scenes/sec\n", rate)
	fmt.Printf("  session moves: max %d, total %d over %d sessions\n", movesMax, movesTotal, o.sessionWorkers)

	fleet := fleetResults{
		Backends:          nBackends,
		SessionWorkers:    o.sessionWorkers,
		Sessions:          o.sessionWorkers,
		SessionMovesMax:   movesMax,
		SessionMovesTotal: movesTotal,
	}
	var jobErr error
	if o.jobScenes > 0 {
		jobErr = fleetRunJob(client, o.base, o.fixtures, o.jobScenes, &fleet)
	}

	if o.outDir != "" {
		var rep report
		rep.Kind = "fleet"
		rep.Date = time.Now().Format(time.RFC3339)
		rep.GoVersion = runtime.Version()
		rep.GOOS, rep.GOARCH, rep.NumCPU = runtime.GOOS, runtime.GOARCH, runtime.NumCPU()
		rep.Config.Typology = o.typology
		rep.Config.Scenes = o.scenes
		rep.Config.Seed = o.seed
		rep.Config.Requests = int(totalReqs)
		rep.Config.Concurrency = o.concurrency
		rep.Config.Batch = o.perReq
		rep.Config.RPS = o.rps
		rep.Results.OK = ok
		rep.Results.Rejected = rejected
		rep.Results.Errors = errs
		rep.Results.ScenesScored = scored
		rep.Results.Seconds = elapsed.Seconds()
		rep.Results.ScenesPerSec = rate
		rep.Fleet = &fleet
		rep.Telemetry = snap
		path := filepath.Join(o.outDir, "BENCH_serve_"+time.Now().UTC().Format("2006-01-02T150405Z")+".json")
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}

	if jobErr != nil {
		return jobErr
	}
	if ok == 0 {
		return fmt.Errorf("no request succeeded (%d rejected, %d errors)", rejected, errs)
	}
	if o.maxErrRate > 0 && errRate > o.maxErrRate {
		return fmt.Errorf("error rate %.2f%% above allowed %.2f%%", 100*errRate, 100*o.maxErrRate)
	}
	if o.maxErrRate == 0 && errs > 0 {
		return fmt.Errorf("%d request(s) failed with errors or unexpected statuses", errs)
	}
	if o.maxMoves >= 0 && movesMax > o.maxMoves {
		return fmt.Errorf("a session moved backends %d times, allowed %d (affinity broken)", movesMax, o.maxMoves)
	}
	if o.minRate > 0 && rate < o.minRate {
		return fmt.Errorf("throughput %.0f scenes/sec below required %.0f", rate, o.minRate)
	}
	return nil
}

// fleetCreateSession opens one sticky session through the gateway and
// returns its ID plus the owning backend from X-Backend.
func fleetCreateSession(client *http.Client, base string) (id, backend string, err error) {
	resp, err := client.Post(base+"/v1/sessions", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		return "", "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return "", "", fmt.Errorf("session create: status %d: %s", resp.StatusCode, body)
	}
	var created server.SessionCreateResponse
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		return "", "", err
	}
	return created.ID, resp.Header.Get("X-Backend"), nil
}

// fleetPost is post() plus the gateway's X-Backend routing marker.
func fleetPost(client *http.Client, url string, body []byte) (status int, backend string, err error) {
	tid := trace.NewID().String()
	t := telReqSecs.Start()
	defer t.Stop()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", tid)
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	var sink [512]byte
	for {
		if _, err := resp.Body.Read(sink[:]); err != nil {
			break
		}
	}
	return resp.StatusCode, resp.Header.Get("X-Backend"), nil
}

// fleetRunJob submits one corpus job (fixtures cycled to n scenes), polls
// it to completion, fetches the results artifact, and checks every scene
// came back scored and index-aligned.
func fleetRunJob(client *http.Client, base string, fixtures []scene.Scene, n int, fleet *fleetResults) error {
	corpus := scene.JobRequest{Scenes: make([]scene.Scene, n)}
	for i := 0; i < n; i++ {
		corpus.Scenes[i] = fixtures[i%len(fixtures)]
	}
	raw, err := scene.EncodeJobRequest(corpus)
	if err != nil {
		return err
	}
	start := time.Now()
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("job submit: %w", err)
	}
	var st scene.JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("job submit: status %d (%v)", resp.StatusCode, err)
	}
	fmt.Printf("  job %s: %d scenes submitted\n", st.ID, st.Total)

	deadline := time.Now().Add(2 * time.Minute)
	for st.State != scene.JobStateDone {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still %s after 2m (%d/%d)", st.ID, st.State, st.Completed, st.Total)
		}
		time.Sleep(100 * time.Millisecond)
		resp, err := client.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			continue // gateway mid-failover; keep polling
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("job poll: %w", err)
		}
	}
	resp, err = client.Get(base + "/v1/jobs/" + st.ID + "/results")
	if err != nil {
		return fmt.Errorf("job results: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("job results: status %d", resp.StatusCode)
	}
	var res scene.JobResults
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return err
	}
	if len(res.Results) != n {
		return fmt.Errorf("job returned %d results for %d scenes", len(res.Results), n)
	}
	for i, r := range res.Results {
		if r.Index != i {
			return fmt.Errorf("job result %d carries index %d (misaligned)", i, r.Index)
		}
	}
	fleet.JobScenes = st.Total
	fleet.JobCompleted = st.Completed
	fleet.JobFailed = st.Failed
	fleet.JobSeconds = time.Since(start).Seconds()
	fmt.Printf("  job %s: %d completed, %d failed in %.1fs\n", st.ID, st.Completed, st.Failed, fleet.JobSeconds)
	if st.Failed > 0 {
		return fmt.Errorf("job %s failed %d of %d scenes", st.ID, st.Failed, st.Total)
	}
	return nil
}
