// Command iprism-benchdiff compares the two newest BENCH_*.json snapshots
// of each kind in a directory and fails when a gated latency distribution
// regressed: exit status 1 if the newer snapshot's p95 exceeds the older
// one's by more than the tolerance on any gated histogram, or if a gated
// histogram the older snapshot measured is missing or empty in the newer
// one (a dropped workload can't dodge the gate by not reporting).
//
// Snapshots are grouped by their "kind" field before comparison, so the
// core bench family (kind "bench", written by cmd/iprism-bench; snapshots
// predating the field read as "bench") and the serving family (kind
// "serve", written by cmd/iprism-loadgen -o) each gate only against their
// own history. Within a kind, lexicographic filename order equals
// chronological order — both writers embed a UTC timestamp after a fixed
// prefix. It is the perf-regression gate wired into scripts/verify.sh; a
// kind with fewer than two snapshots reports and passes, so fresh clones
// and first runs are not blocked.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// gatedHistograms are the latency distributions each snapshot kind gates
// on: the STI evaluation path (the paper's 10 Hz monitor budget) and the
// simulator step for core bench runs, the client-observed request latency
// for serving runs (standalone "serve" and gateway-fronted "fleet" runs
// gate the same client-side histogram, compared within their own kind).
var gatedHistograms = map[string][]string{
	"bench": {"sti.evaluate.seconds", "sim.step.seconds", "bench.sti_evaluate_dense12.seconds", "bench.sti_evaluate_dense64.seconds", "bench.sti_evaluate_session12.seconds"},
	"serve": {"loadgen.request.seconds"},
	"fleet": {"loadgen.request.seconds"},
}

// gatedGauges are throughput gauges — higher is better — each kind gates
// on: the gate fails when the newer snapshot's value drops below the older
// one's by more than the tolerance, or when a previously-measured gauge is
// missing or zero in the newer snapshot. A gauge only the new snapshot has
// reports its first measurement and starts gating at the next pair.
// Training gates on throughput, not per-episode wall p95: parallel episode
// workers time-share cores, so per-episode latency legitimately rises with
// worker count while episodes/sec is what the workload optimises
// (smc.episode.seconds still prints in the ungated latency table).
var gatedGauges = map[string][]string{
	"bench": {"bench.smc_train.episodes_per_sec"},
}

// snapshot mirrors the subset of the bench/loadgen reports the gate reads.
type snapshot struct {
	Kind      string `json:"kind"`
	Date      string `json:"date"`
	Workloads map[string]struct {
		PerOp float64 `json:"per_op_seconds"`
	} `json:"workloads"`
	Telemetry telemetry.Snapshot `json:"telemetry"`

	path string
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iprism-benchdiff:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dir       = flag.String("dir", ".", "directory holding BENCH_*.json snapshots")
		tolerance = flag.Float64("tolerance", 0.20, "allowed fractional p95 increase before failing")
	)
	flag.Parse()

	paths, err := filepath.Glob(filepath.Join(*dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	byKind := map[string][]snapshot{}
	for _, p := range paths {
		s, err := load(p)
		if err != nil {
			return err
		}
		byKind[s.Kind] = append(byKind[s.Kind], s)
	}
	if len(byKind) == 0 {
		fmt.Printf("benchdiff: no snapshots in %s, passing\n", *dir)
		return nil
	}

	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)

	failed := false
	for _, kind := range kinds {
		snaps := byKind[kind]
		if len(snaps) < 2 {
			fmt.Printf("benchdiff[%s]: %d snapshot(s) — need two to compare, passing\n", kind, len(snaps))
			continue
		}
		oldSnap, newSnap := snaps[len(snaps)-2], snaps[len(snaps)-1]
		fmt.Printf("benchdiff[%s]: %s -> %s (tolerance %+.0f%%)\n",
			kind, filepath.Base(oldSnap.path), filepath.Base(newSnap.path), *tolerance*100)
		if diff(oldSnap, newSnap, gatedHistograms[kind], gatedGauges[kind], *tolerance) {
			failed = true
		}
	}

	if failed {
		return fmt.Errorf("gated metric regressed beyond %.0f%% p95 tolerance or went missing", *tolerance*100)
	}
	return nil
}

// diff prints the full per-metric old→new comparison for one snapshot pair
// — every latency histogram the two snapshots share, gated or not, the
// gated throughput gauges, plus the informational workload per-op times —
// and reports whether any gated p95 regressed (latency: up is bad) or any
// gated gauge dropped (throughput: down is bad). The table always prints,
// pass or fail, so every snapshot pair in the history documents its delta.
func diff(oldSnap, newSnap snapshot, gated, gatedG []string, tolerance float64) bool {
	isGated := make(map[string]bool, len(gated))
	for _, name := range gated {
		isGated[name] = true
	}

	// All latency histograms in the new snapshot, gated ones first (in
	// their gate order), then the rest alphabetically. Non-latency
	// histograms (volumes, actor counts) are skipped: their values are not
	// durations and their buckets don't move with performance.
	rest := make([]string, 0, len(newSnap.Telemetry.Histograms))
	for name := range newSnap.Telemetry.Histograms {
		if !isGated[name] && strings.HasSuffix(name, ".seconds") {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	names := append(append([]string{}, gated...), rest...)

	failed := false
	for _, name := range names {
		o, oOK := oldSnap.Telemetry.Histograms[name]
		n, nOK := newSnap.Telemetry.Histograms[name]
		label := "    "
		if isGated[name] {
			label = "gate"
		}
		switch {
		case !nOK || n.Count == 0:
			// A gated metric the old snapshot measured but the new one lacks
			// is a silently-dropped workload or a renamed metric — exactly the
			// regressions the gate exists to catch — so it fails rather than
			// skips. A gate name neither snapshot has yet (a gate added ahead
			// of its first bench run) cannot have regressed and passes.
			if isGated[name] {
				if oOK && o.Count > 0 {
					fmt.Printf("  %s %-36s was p95 %s, missing or empty in the new snapshot: MISSING\n",
						label, name, fmtSec(o.P95))
					failed = true
				} else {
					fmt.Printf("  %s %-36s absent from both snapshots, skipping\n", label, name)
				}
			}
			continue
		case !oOK || o.Count == 0:
			// A metric the old snapshot predates cannot regress yet: report
			// its first measurement; gated ones start gating at the next pair.
			if isGated[name] {
				fmt.Printf("  %s %-36s p50 %s  p95 %s (new metric — gating starts next snapshot)\n",
					label, name, fmtSec(n.P50), fmtSec(n.P95))
			}
			continue
		}
		status := "ok"
		if n.P95 > o.P95*(1+tolerance) {
			if isGated[name] {
				status = "REGRESSED"
				failed = true
			} else {
				status = "regressed (not gated)"
			}
		}
		fmt.Printf("  %s %-36s p50 %s -> %s   p95 %s -> %s (%+.1f%%) %s\n",
			label, name, fmtSec(o.P50), fmtSec(n.P50), fmtSec(o.P95), fmtSec(n.P95),
			(n.P95/o.P95-1)*100, status)
	}

	// Throughput gauges gate in the opposite direction from latency: the
	// newer value must not DROP below the older by more than the tolerance.
	for _, name := range gatedG {
		o, oOK := oldSnap.Telemetry.Gauges[name]
		n, nOK := newSnap.Telemetry.Gauges[name]
		switch {
		case !nOK || n <= 0:
			if oOK && o > 0 {
				fmt.Printf("  gate %-36s was %.2f/s, missing or zero in the new snapshot: MISSING\n", name, o)
				failed = true
			} else {
				fmt.Printf("  gate %-36s absent from both snapshots, skipping\n", name)
			}
		case !oOK || o <= 0:
			fmt.Printf("  gate %-36s %.2f/s (new metric — gating starts next snapshot)\n", name, n)
		default:
			status := "ok"
			if n < o*(1-tolerance) {
				status = "REGRESSED"
				failed = true
			}
			fmt.Printf("  gate %-36s %.2f/s -> %.2f/s (%+.1f%%) %s\n", name, o, n, (n/o-1)*100, status)
		}
	}

	// Workload per-op times are informational: totals over a whole workload
	// are steadier than tail percentiles, but scenario mixes may change
	// between snapshots, so they do not gate.
	wnames := make([]string, 0, len(newSnap.Workloads))
	for name := range newSnap.Workloads {
		if _, ok := oldSnap.Workloads[name]; ok {
			wnames = append(wnames, name)
		}
	}
	sort.Strings(wnames)
	for _, name := range wnames {
		o, n := oldSnap.Workloads[name], newSnap.Workloads[name]
		if o.PerOp <= 0 || n.PerOp <= 0 {
			continue
		}
		fmt.Printf("       %-36s per-op %s -> %s (%+.1f%%)\n",
			name, fmtSec(o.PerOp), fmtSec(n.PerOp), (n.PerOp/o.PerOp-1)*100)
	}
	return failed
}

func load(path string) (snapshot, error) {
	var s snapshot
	raw, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(raw, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	if s.Kind == "" {
		s.Kind = "bench" // snapshots predating the kind field
	}
	s.path = path
	return s, nil
}

func fmtSec(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
