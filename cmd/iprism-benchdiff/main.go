// Command iprism-benchdiff compares the two newest BENCH_<date>.json
// snapshots in a directory (lexicographic filename order, which
// cmd/iprism-bench guarantees equals chronological order) and fails when a
// gated latency distribution regressed: exit status 1 if the newer
// snapshot's p95 exceeds the older one's by more than the tolerance on any
// gated histogram. It is the perf-regression gate wired into
// scripts/verify.sh; with fewer than two snapshots it reports and passes,
// so fresh clones and first runs are not blocked.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/telemetry"
)

// gatedHistograms are the latency distributions the gate fails on: the STI
// evaluation path (the paper's 10 Hz monitor budget) and the simulator step.
var gatedHistograms = []string{"sti.evaluate.seconds", "sim.step.seconds"}

// snapshot mirrors the subset of the iprism-bench report the gate reads.
type snapshot struct {
	Date      string `json:"date"`
	Workloads map[string]struct {
		PerOp float64 `json:"per_op_seconds"`
	} `json:"workloads"`
	Telemetry telemetry.Snapshot `json:"telemetry"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iprism-benchdiff:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dir       = flag.String("dir", ".", "directory holding BENCH_<date>.json snapshots")
		tolerance = flag.Float64("tolerance", 0.20, "allowed fractional p95 increase before failing")
	)
	flag.Parse()

	paths, err := filepath.Glob(filepath.Join(*dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	if len(paths) < 2 {
		fmt.Printf("benchdiff: %d snapshot(s) in %s — need two to compare, passing\n", len(paths), *dir)
		return nil
	}
	sort.Strings(paths)
	oldPath, newPath := paths[len(paths)-2], paths[len(paths)-1]

	oldSnap, err := load(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := load(newPath)
	if err != nil {
		return err
	}
	fmt.Printf("benchdiff: %s -> %s (tolerance %+.0f%%)\n",
		filepath.Base(oldPath), filepath.Base(newPath), *tolerance*100)

	failed := false
	for _, name := range gatedHistograms {
		o, oOK := oldSnap.Telemetry.Histograms[name]
		n, nOK := newSnap.Telemetry.Histograms[name]
		if !oOK || !nOK || o.Count == 0 || n.Count == 0 {
			fmt.Printf("  %-28s missing or empty in a snapshot, skipping\n", name)
			continue
		}
		ratio := n.P95 / o.P95
		status := "ok"
		if n.P95 > o.P95*(1+*tolerance) {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("  %-28s p50 %s -> %s   p95 %s -> %s (%+.1f%%) %s\n",
			name, fmtSec(o.P50), fmtSec(n.P50), fmtSec(o.P95), fmtSec(n.P95),
			(ratio-1)*100, status)
	}

	// Workload per-op times are informational: totals over a whole workload
	// are steadier than tail percentiles, but scenario mixes may change
	// between snapshots, so they do not gate.
	names := make([]string, 0, len(newSnap.Workloads))
	for name := range newSnap.Workloads {
		if _, ok := oldSnap.Workloads[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		o, n := oldSnap.Workloads[name], newSnap.Workloads[name]
		if o.PerOp <= 0 || n.PerOp <= 0 {
			continue
		}
		fmt.Printf("  %-28s per-op %s -> %s (%+.1f%%)\n",
			name, fmtSec(o.PerOp), fmtSec(n.PerOp), (n.PerOp/o.PerOp-1)*100)
	}

	if failed {
		return fmt.Errorf("p95 regression beyond %.0f%% tolerance", *tolerance*100)
	}
	return nil
}

func load(path string) (snapshot, error) {
	var s snapshot
	raw, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(raw, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func fmtSec(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
