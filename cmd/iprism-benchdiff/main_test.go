package main

import (
	"testing"

	"repro/internal/telemetry"
)

// snap builds a snapshot whose histogram map holds the given metric p95s
// (count fixed at 100 so the stats read as populated).
func snap(p95s map[string]float64) snapshot {
	h := make(map[string]telemetry.HistogramStats, len(p95s))
	for name, p95 := range p95s {
		h[name] = telemetry.HistogramStats{Count: 100, P50: p95 / 2, P95: p95}
	}
	return snapshot{Kind: "bench", Telemetry: telemetry.Snapshot{Histograms: h}}
}

// The gate's verdict over one snapshot pair: regressions beyond tolerance
// fail, improvements and within-tolerance drift pass, and a gated metric
// that the old snapshot measured but the new one dropped fails — silently
// losing a workload is not a pass. A gate name absent from both snapshots
// (a gate registered ahead of its first bench run) passes.
func TestDiffGateVerdicts(t *testing.T) {
	gated := []string{"sti.evaluate.seconds", "bench.sti_evaluate_dense64.seconds"}
	cases := []struct {
		name     string
		old, new map[string]float64
		fail     bool
	}{
		{
			name: "within tolerance passes",
			old:  map[string]float64{"sti.evaluate.seconds": 1.00, "bench.sti_evaluate_dense64.seconds": 2.00},
			new:  map[string]float64{"sti.evaluate.seconds": 1.15, "bench.sti_evaluate_dense64.seconds": 2.30},
			fail: false,
		},
		{
			name: "improvement passes",
			old:  map[string]float64{"sti.evaluate.seconds": 1.00, "bench.sti_evaluate_dense64.seconds": 2.00},
			new:  map[string]float64{"sti.evaluate.seconds": 0.40, "bench.sti_evaluate_dense64.seconds": 0.90},
			fail: false,
		},
		{
			name: "gated p95 regression fails",
			old:  map[string]float64{"sti.evaluate.seconds": 1.00, "bench.sti_evaluate_dense64.seconds": 2.00},
			new:  map[string]float64{"sti.evaluate.seconds": 1.50, "bench.sti_evaluate_dense64.seconds": 2.00},
			fail: true,
		},
		{
			name: "ungated regression passes",
			old:  map[string]float64{"sti.evaluate.seconds": 1.00, "other.path.seconds": 0.10},
			new:  map[string]float64{"sti.evaluate.seconds": 1.00, "other.path.seconds": 9.00},
			fail: false,
		},
		{
			name: "previously gated metric missing from new snapshot fails",
			old:  map[string]float64{"sti.evaluate.seconds": 1.00, "bench.sti_evaluate_dense64.seconds": 2.00},
			new:  map[string]float64{"sti.evaluate.seconds": 1.00},
			fail: true,
		},
		{
			name: "gate absent from both snapshots passes",
			old:  map[string]float64{"sti.evaluate.seconds": 1.00},
			new:  map[string]float64{"sti.evaluate.seconds": 1.00},
			fail: false,
		},
		{
			name: "new metric starts gating next snapshot",
			old:  map[string]float64{"sti.evaluate.seconds": 1.00},
			new:  map[string]float64{"sti.evaluate.seconds": 1.00, "bench.sti_evaluate_dense64.seconds": 99.0},
			fail: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := diff(snap(tc.old), snap(tc.new), gated, nil, 0.20); got != tc.fail {
				t.Errorf("diff failed=%v, want %v", got, tc.fail)
			}
		})
	}
}

// An empty (count zero) gated histogram in the new snapshot is treated the
// same as a missing one: the measurement is gone either way.
func TestDiffGateEmptyCountsAsMissing(t *testing.T) {
	oldSnap := snap(map[string]float64{"sti.evaluate.seconds": 1.00})
	newSnap := snap(nil)
	newSnap.Telemetry.Histograms["sti.evaluate.seconds"] = telemetry.HistogramStats{Count: 0}
	if !diff(oldSnap, newSnap, []string{"sti.evaluate.seconds"}, nil, 0.20) {
		t.Error("empty gated histogram in new snapshot should fail the gate")
	}
}

// gaugeSnap builds a snapshot carrying only throughput gauges.
func gaugeSnap(gauges map[string]float64) snapshot {
	g := make(map[string]float64, len(gauges))
	for name, v := range gauges {
		g[name] = v
	}
	return snapshot{Kind: "bench", Telemetry: telemetry.Snapshot{Gauges: g}}
}

// Throughput gauges gate downwards: a drop beyond tolerance fails, a rise
// or within-tolerance drift passes, a previously-measured gauge going
// missing (or zero) fails, and a first measurement passes with gating
// deferred to the next snapshot pair.
func TestDiffGaugeGateVerdicts(t *testing.T) {
	const eps = "bench.smc_train.episodes_per_sec"
	gated := []string{eps}
	cases := []struct {
		name     string
		old, new map[string]float64
		fail     bool
	}{
		{
			name: "improvement passes",
			old:  map[string]float64{eps: 3.7},
			new:  map[string]float64{eps: 12.1},
			fail: false,
		},
		{
			name: "within tolerance drop passes",
			old:  map[string]float64{eps: 3.7},
			new:  map[string]float64{eps: 3.2},
			fail: false,
		},
		{
			name: "drop beyond tolerance fails",
			old:  map[string]float64{eps: 3.7},
			new:  map[string]float64{eps: 2.0},
			fail: true,
		},
		{
			name: "previously measured gauge missing fails",
			old:  map[string]float64{eps: 3.7},
			new:  map[string]float64{},
			fail: true,
		},
		{
			name: "previously measured gauge zero fails",
			old:  map[string]float64{eps: 3.7},
			new:  map[string]float64{eps: 0},
			fail: true,
		},
		{
			name: "new metric starts gating next snapshot",
			old:  map[string]float64{},
			new:  map[string]float64{eps: 3.7},
			fail: false,
		},
		{
			name: "gauge absent from both snapshots passes",
			old:  map[string]float64{},
			new:  map[string]float64{},
			fail: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := diff(gaugeSnap(tc.old), gaugeSnap(tc.new), nil, gated, 0.20); got != tc.fail {
				t.Errorf("diff failed=%v, want %v", got, tc.fail)
			}
		})
	}
}
