// Command iprism-serve runs the online STI risk-scoring service: a JSON
// HTTP API that accepts driving scenes and returns per-actor and combined
// STI, plus a session API for streaming episode observations and querying
// peak risk and risky intervals.
//
//	iprism-serve -addr :8377
//	curl -s localhost:8377/healthz
//	curl -s -X POST localhost:8377/v1/score -d @scene.json
//
// The process shuts down gracefully on SIGINT/SIGTERM: the listener closes
// immediately, every accepted request is answered, then the scoring
// workers exit and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr       = flag.String("addr", ":8377", "listen address (use 127.0.0.1:0 for an ephemeral port)")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using :0)")
		workers    = flag.Int("workers", 0, "scoring workers / pooled evaluators (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "queued jobs beyond in-flight before 429 (0 = 16x workers)")
		timeout    = flag.Duration("timeout", 2*time.Second, "per-request scoring deadline")
		batchMax   = flag.Int("batch-max", 0, "max queued jobs one worker drains per wake-up (0 = 8, 1 = off)")
		sessions   = flag.Int("max-sessions", 0, "max concurrently open sessions (0 = 1024)")
		journal    = flag.String("journal", "", "append JSONL telemetry events (including per-request wide events) to this file")
		journalMax = flag.Int64("journal-max-bytes", 64<<20, "rotate the journal to <path>.1 past this size (0 = unbounded)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful shutdown budget before connections are force-closed")
		shared     = flag.Bool("shared-expansion", true, "score with the shared-expansion counterfactual engine (false = legacy per-actor tubes)")
		warm       = flag.Bool("warm", true, "warm-start session scoring from the previous tick's expansion (requires -shared-expansion)")
		sloAvail   = flag.Float64("slo-availability", 0.999, "availability objective: fraction of requests answered without server error")
		sloLat     = flag.Float64("slo-latency", 0.99, "latency objective: fraction of requests answered within -slo-latency-target")
		sloLatTgt  = flag.Duration("slo-latency-target", 250*time.Millisecond, "latency threshold backing the latency SLO")
		flightSize = flag.Int("flight-recorder-size", 256, "wide events retained in memory for /debug/requests")
		sseHB      = flag.Duration("sse-heartbeat", 10*time.Second, "idle heartbeat interval on session risk streams")
		sseHistory = flag.Int("sse-history", 0, "per-session events retained for Last-Event-ID resume (0 = 256)")
	)
	flag.Parse()

	// The server exposes /metrics and /debug/telemetry itself, so metric
	// collection is always on for the serve command.
	telemetry.Enable()
	if *journal != "" {
		j, err := telemetry.OpenJournalRotating(*journal, *journalMax)
		if err != nil {
			log.Fatalf("iprism-serve: journal: %v", err)
		}
		defer j.Close()
		telemetry.SetJournal(j)
	}

	s, err := server.New(server.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		RequestTimeout:     *timeout,
		BatchMax:           *batchMax,
		MaxSessions:        *sessions,
		SharedExpansion:    *shared,
		WarmStart:          *warm,
		SLOAvailability:    *sloAvail,
		SLOLatency:         *sloLat,
		SLOLatencyTarget:   *sloLatTgt,
		FlightRecorderSize: *flightSize,
		SSEHeartbeat:       *sseHB,
		SSEHistory:         *sseHistory,
	})
	if err != nil {
		log.Fatalf("iprism-serve: %v", err)
	}
	if err := s.Start(*addr); err != nil {
		log.Fatalf("iprism-serve: %v", err)
	}
	log.Printf("iprism-serve: listening on %s", s.Addr())
	if *addrFile != "" {
		// Write-then-rename so pollers never read a partial address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(s.Addr()+"\n"), 0o644); err != nil {
			log.Fatalf("iprism-serve: addr-file: %v", err)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			log.Fatalf("iprism-serve: addr-file: %v", err)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	log.Printf("iprism-serve: %v, draining", got)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "iprism-serve: shutdown: %v\n", err)
		os.Exit(1)
	}
	log.Printf("iprism-serve: drained, exiting")
}
