// Command iprism-bench runs the repository's standing benchmark workloads
// — STI evaluation (full and combined fast path) on the canonical
// three-actor scene, and LBC episodes over a ghost cut-in suite — with
// telemetry enabled, then writes the resulting latency distributions and
// counters as a BENCH_<date>.json snapshot. Committing these snapshots over
// time gives the repo a perf trajectory to regress against.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/actor"
	"repro/internal/agent"
	"repro/internal/geom"
	"repro/internal/reach"
	"repro/internal/roadmap"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/smc"
	"repro/internal/sti"
	"repro/internal/telemetry"
	"repro/internal/vehicle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iprism-bench:", err)
		os.Exit(1)
	}
}

// report is the BENCH_<date>.json schema. Kind tags the snapshot family
// ("bench") so cmd/iprism-benchdiff compares it only against other core
// bench snapshots, never against serve-kind loadgen snapshots.
type report struct {
	Kind      string `json:"kind"`
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	Config struct {
		STIIters        int   `json:"sti_iters"`
		STIWorkers      int   `json:"sti_workers"`
		SharedExpansion bool  `json:"shared_expansion"`
		Episodes        int   `json:"episodes"`
		Seed            int64 `json:"seed"`
		TrainEpisodes   int   `json:"train_episodes"`
		TrainWorkers    int   `json:"train_workers"`
	} `json:"config"`

	// Workloads holds wall-clock totals per workload; the per-operation
	// latency distributions live in Telemetry.Histograms (e.g.
	// "sti.evaluate.seconds", "sim.step.seconds").
	Workloads map[string]workload `json:"workloads"`
	Telemetry telemetry.Snapshot  `json:"telemetry"`
}

type workload struct {
	Iterations int     `json:"iterations"`
	Seconds    float64 `json:"seconds"`
	PerOp      float64 `json:"per_op_seconds"`
}

func run() error {
	var (
		stiIters   = flag.Int("sti-iters", 300, "STI evaluations per variant")
		episodes   = flag.Int("episodes", 20, "ghost cut-in episodes to simulate")
		seed       = flag.Int64("seed", 2024, "scenario generation seed")
		trainEps   = flag.Int("train-episodes", 12, "SMC training episodes for the smc_train workload")
		trainWork  = flag.Int("train-workers", 0, "episode workers for the smc_train workload (0 = GOMAXPROCS)")
		workers    = flag.Int("sti-workers", 0, "STI counterfactual fan-out width (0 = GOMAXPROCS, 1 = serial)")
		shared     = flag.Bool("shared", true, "evaluate STI with the shared-expansion counterfactual engine (false = legacy per-actor tubes)")
		outDir     = flag.String("o", ".", "directory for the BENCH_<date>.json snapshot")
		telAddr    = flag.String("telemetry", "", "additionally serve expvar and pprof on this address while benchmarking")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
		memProfile = flag.String("memprofile", "", "write a post-run heap profile to this file")
	)
	flag.Parse()

	cleanup, err := telemetry.Setup(*telAddr, "")
	if err != nil {
		return err
	}
	defer cleanup()
	telemetry.Enable()
	telemetry.Default().Reset()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	var rep report
	rep.Kind = "bench"
	rep.Date = time.Now().Format(time.RFC3339)
	rep.GoVersion = runtime.Version()
	rep.GOOS, rep.GOARCH, rep.NumCPU = runtime.GOOS, runtime.GOARCH, runtime.NumCPU()
	rep.Config.STIIters = *stiIters
	rep.Config.Episodes = *episodes
	rep.Config.Seed = *seed
	rep.Workloads = make(map[string]workload)

	// Per-workload latency distributions: the process-wide
	// "sti.evaluate.seconds" histogram mixes every Evaluate call in the run,
	// so each workload also records its own distribution under
	// "bench.<workload>.seconds". cmd/iprism-benchdiff gates the dense
	// twelve-actor one — the workload the shared-expansion engine targets.
	var (
		histFull3    = telemetry.NewHistogram("bench.sti_evaluate_full.seconds", telemetry.LatencyBuckets())
		histFull6    = telemetry.NewHistogram("bench.sti_evaluate_full_6actor.seconds", telemetry.LatencyBuckets())
		histDense12  = telemetry.NewHistogram("bench.sti_evaluate_dense12.seconds", telemetry.LatencyBuckets())
		histDense64  = telemetry.NewHistogram("bench.sti_evaluate_dense64.seconds", telemetry.LatencyBuckets())
		histDense128 = telemetry.NewHistogram("bench.sti_evaluate_dense128.seconds", telemetry.LatencyBuckets())
	)

	// Workload 1: STI evaluation on the canonical three-actor straight-road
	// scene (mirrors BenchmarkSTIEvaluation / BenchmarkEvaluateCombined).
	eval, err := sti.NewEvaluatorOptions(reach.DefaultConfig(), sti.Options{Workers: *workers, SharedExpansion: *shared})
	if err != nil {
		return err
	}
	rep.Config.STIWorkers = eval.Workers()
	rep.Config.SharedExpansion = eval.SharedExpansion()
	road := roadmap.MustStraightRoad(2, 3.5, -100, 1000)
	actors := []*actor.Actor{
		actor.NewVehicle(1, vehicle.State{Pos: geom.V(14, 1.75), Speed: 3}),
		actor.NewVehicle(2, vehicle.State{Pos: geom.V(5, 5.25), Speed: 10}),
		actor.NewVehicle(3, vehicle.State{Pos: geom.V(-15, 1.75), Speed: 15}),
	}
	ego := vehicle.State{Pos: geom.V(0, 1.75), Speed: 10}

	start := time.Now()
	for i := 0; i < *stiIters; i++ {
		t := histFull3.Start()
		eval.EvaluateWithPrediction(road, ego, actors)
		t.Stop()
	}
	rep.Workloads["sti_evaluate_full"] = timed(*stiIters, time.Since(start))

	start = time.Now()
	for i := 0; i < *stiIters; i++ {
		eval.CombinedWithPrediction(road, ego, actors)
	}
	rep.Workloads["sti_evaluate_combined"] = timed(*stiIters, time.Since(start))

	// Workload 1b: the dense six-actor scene, the N+2-tube configuration the
	// per-actor counterfactual loop is slowest on (monitor-tick worst case).
	dense := []*actor.Actor{
		actor.NewVehicle(1, vehicle.State{Pos: geom.V(14, 1.75), Speed: 3}),
		actor.NewVehicle(2, vehicle.State{Pos: geom.V(5, 5.25), Speed: 10}),
		actor.NewVehicle(3, vehicle.State{Pos: geom.V(-15, 1.75), Speed: 15}),
		actor.NewVehicle(4, vehicle.State{Pos: geom.V(28, 5.25), Speed: 8}),
		actor.NewVehicle(5, vehicle.State{Pos: geom.V(-8, 5.25), Speed: 12}),
		actor.NewVehicle(6, vehicle.State{Pos: geom.V(40, 1.75), Speed: 5}),
	}
	start = time.Now()
	for i := 0; i < *stiIters; i++ {
		t := histFull6.Start()
		eval.EvaluateWithPrediction(road, ego, dense)
		t.Stop()
	}
	rep.Workloads["sti_evaluate_full_6actor"] = timed(*stiIters, time.Since(start))

	// Workload 1c: the dense twelve-actor scene (mirrors
	// BenchmarkEvaluateDense12*): a fast ego rolling up on two ranks of slow
	// traffic across three lanes with fast vehicles closing from behind, so
	// ~6 actors genuinely carve the reach-tube. This is the workload class
	// where the legacy path pays a near-full-size counterfactual tube per
	// blocker and the shared expansion covers the union once.
	denseRoad := roadmap.MustStraightRoad(3, 3.5, -100, 1000)
	denseEgo := vehicle.State{Pos: geom.V(0, 5.25), Speed: 12}
	dense12 := []*actor.Actor{
		actor.NewVehicle(1, vehicle.State{Pos: geom.V(30, 1.75), Speed: 6}),
		actor.NewVehicle(2, vehicle.State{Pos: geom.V(36, 5.25), Speed: 6}),
		actor.NewVehicle(3, vehicle.State{Pos: geom.V(33, 8.75), Speed: 6}),
		actor.NewVehicle(4, vehicle.State{Pos: geom.V(40, 1.75), Speed: 6}),
		actor.NewVehicle(5, vehicle.State{Pos: geom.V(46, 5.25), Speed: 6}),
		actor.NewVehicle(6, vehicle.State{Pos: geom.V(43, 8.75), Speed: 6}),
		actor.NewVehicle(7, vehicle.State{Pos: geom.V(-14, 5.25), Speed: 15}),
		actor.NewVehicle(8, vehicle.State{Pos: geom.V(-18, 1.75), Speed: 16}),
		actor.NewVehicle(9, vehicle.State{Pos: geom.V(-16, 8.75), Speed: 17}),
		actor.NewVehicle(10, vehicle.State{Pos: geom.V(55, 5.25), Speed: 5}),
		actor.NewVehicle(11, vehicle.State{Pos: geom.V(52, 1.75), Speed: 5}),
		actor.NewVehicle(12, vehicle.State{Pos: geom.V(53, 8.75), Speed: 5}),
	}
	dense12Iters := *stiIters / 3
	if dense12Iters < 1 {
		dense12Iters = 1
	}
	start = time.Now()
	for i := 0; i < dense12Iters; i++ {
		t := histDense12.Start()
		eval.EvaluateWithPrediction(denseRoad, denseEgo, dense12)
		t.Stop()
	}
	rep.Workloads["sti_evaluate_dense12"] = timed(dense12Iters, time.Since(start))

	// Workload 1d: crowd-scale urban-intersection crush scenes
	// (scenario.UrbanCrush). dense64 crosses the old single-word mask
	// boundary by one actor — the scene class whose critical lead blocker
	// used to land on the spillover fallback path — and dense128 doubles
	// the crowd so the segmented expansion carries three mask words.
	for _, wl := range []struct {
		name string
		n    int
		div  int
		hist *telemetry.Histogram
	}{
		// Divisors keep ≥100 samples on the benchdiff-gated dense64 histogram:
		// with a few dozen samples the p95 interpolates off the top one or two
		// observations inside a wide latency bucket, and run-to-run tail noise
		// alone can swing it past the gate tolerance.
		{"sti_evaluate_dense64", 64, 3, histDense64},
		{"sti_evaluate_dense128", 128, 6, histDense128},
	} {
		crushRoad, crushEgo, crush := scenario.UrbanCrush(wl.n)
		iters := *stiIters / wl.div
		if iters < 1 {
			iters = 1
		}
		start = time.Now()
		for i := 0; i < iters; i++ {
			t := wl.hist.Start()
			eval.EvaluateWithPrediction(crushRoad, crushEgo, crush)
			t.Stop()
		}
		rep.Workloads[wl.name] = timed(iters, time.Since(start))
	}

	// Workload 1e: the canonical stop-and-go session replay (mirrors
	// BenchmarkEvaluateSession12*): one evaluator scores the recorded
	// 12-actor trace tick by tick holding a session WarmState, then a cold
	// evaluator scores the identical stream. The warm per-tick distribution
	// is the gated serving-path metric; the cold one rides along so every
	// snapshot carries its own A/B.
	var (
		histSession12     = telemetry.NewHistogram("bench.sti_evaluate_session12.seconds", telemetry.LatencyBuckets())
		histSession12Cold = telemetry.NewHistogram("bench.sti_evaluate_session12_cold.seconds", telemetry.LatencyBuckets())
	)
	sessCfg := reach.DefaultConfig()
	sessRoad, sessTrace := scenario.StopAndGoSession(12, 40)
	sessTrajs := make([][]actor.Trajectory, len(sessTrace))
	for t, tick := range sessTrace {
		sessTrajs[t] = actor.PredictAll(tick.Actors, sessCfg.NumSlices(), sessCfg.SliceDt)
	}
	sessIters := *stiIters / 3
	if sessIters < 1 {
		sessIters = 1
	}
	for _, wl := range []struct {
		name string
		warm bool
		hist *telemetry.Histogram
	}{
		{"sti_evaluate_session12", true, histSession12},
		{"sti_evaluate_session12_cold", false, histSession12Cold},
	} {
		sessEval, err := sti.NewEvaluatorOptions(sessCfg, sti.Options{Workers: 1, SharedExpansion: true, WarmStart: wl.warm})
		if err != nil {
			return err
		}
		var ws *sti.WarmState
		if wl.warm {
			ws = sti.NewWarmState()
		}
		start = time.Now()
		for i := 0; i < sessIters; i++ {
			tick := sessTrace[i%len(sessTrace)]
			t := wl.hist.Start()
			sessEval.EvaluateWarm(sessRoad, tick.Ego, tick.Actors, sessTrajs[i%len(sessTrace)], ws)
			t.Stop()
		}
		rep.Workloads[wl.name] = timed(sessIters, time.Since(start))
	}

	// Workload 2: full LBC episodes over a ghost cut-in suite, populating
	// the sim-step latency distribution and the reach/collision counters.
	scns := scenario.GenerateValid(scenario.GhostCutIn, *episodes, *seed)
	steps := 0
	start = time.Now()
	for _, s := range scns {
		w, err := s.Build()
		if err != nil {
			return err
		}
		out := sim.Run(w, agent.NewLBC(agent.DefaultLBCConfig()), nil, sim.RunConfig{MaxSteps: s.MaxSteps})
		steps += out.Steps
	}
	rep.Workloads["sim_episodes"] = timed(steps, time.Since(start))

	// Workload 3: SMC training as a standing workload — a fixed-seed,
	// fixed-budget run over two ghost cut-in scenarios on the shared-
	// expansion evaluator. The gated numbers are the episodes/sec gauge
	// (higher is better) and the per-episode wall p95 ("smc.episode.seconds"
	// — this process trains nowhere else, so the process-wide histogram is
	// exactly this workload's distribution).
	trainWorkers := *trainWork
	if trainWorkers <= 0 {
		trainWorkers = runtime.GOMAXPROCS(0)
	}
	rep.Config.TrainEpisodes = *trainEps
	rep.Config.TrainWorkers = trainWorkers
	gaugeEpisodesPerSec := telemetry.NewGauge("bench.smc_train.episodes_per_sec")
	trainScns := scenario.Generate(scenario.GhostCutIn, 2, 7)
	tcfg := smc.DefaultConfig()
	tcfg.DDQN.Seed = 11
	tcfg.DDQN.EpsDecaySteps = *trainEps * 100
	tcfg.EpisodeWorkers = trainWorkers
	start = time.Now()
	_, tres, err := smc.Train(trainScns, func() sim.Driver { return agent.NewLBC(agent.DefaultLBCConfig()) }, tcfg, *trainEps)
	if err != nil {
		return err
	}
	trainDur := time.Since(start)
	rep.Workloads["smc_train"] = timed(tres.Episodes, trainDur)
	if s := trainDur.Seconds(); s > 0 {
		gaugeEpisodesPerSec.Set(float64(tres.Episodes) / s)
	}

	rep.Telemetry = telemetry.Default().Snapshot()

	// Timestamped to the second so several snapshots per day coexist and
	// lexicographic filename order equals chronological order (the contract
	// cmd/iprism-benchdiff relies on).
	path := filepath.Join(*outDir, "BENCH_"+time.Now().UTC().Format("2006-01-02T150405Z")+".json")
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}

	for _, name := range []string{
		"sti.evaluate.seconds", "sti.evaluate_combined.seconds", "sim.step.seconds",
		"bench.sti_evaluate_full.seconds", "bench.sti_evaluate_full_6actor.seconds",
		"bench.sti_evaluate_dense12.seconds", "bench.sti_evaluate_dense64.seconds",
		"bench.sti_evaluate_dense128.seconds", "bench.sti_evaluate_session12.seconds",
		"bench.sti_evaluate_session12_cold.seconds", "smc.episode.seconds",
	} {
		h := rep.Telemetry.Histograms[name]
		fmt.Printf("%-40s n=%-6d p50 %s  p95 %s  p99 %s\n",
			name, h.Count, fmtSec(h.P50), fmtSec(h.P95), fmtSec(h.P99))
	}
	fmt.Printf("%-40s %.2f ep/s (%d workers, %d episodes)\n",
		"bench.smc_train.episodes_per_sec", rep.Telemetry.Gauges["bench.smc_train.episodes_per_sec"], trainWorkers, tres.Episodes)
	fmt.Printf("wrote %s\n", path)

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // settle live-heap accounting before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

func timed(iters int, d time.Duration) workload {
	w := workload{Iterations: iters, Seconds: d.Seconds()}
	if iters > 0 {
		w.PerOp = d.Seconds() / float64(iters)
	}
	return w
}

func fmtSec(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
