// Command iprism-promlint checks a Prometheus/OpenMetrics exposition for
// structural conformance: metric and label naming, HELP/TYPE ordering,
// counter _total suffixes, histogram completeness (le="+Inf", _sum/_count),
// exemplar placement, and OpenMetrics EOF termination. It exits 1 when any
// finding is reported, so scripts can gate /metrics in CI.
//
//	iprism-promlint -url http://localhost:8377/metrics
//	iprism-promlint -url http://localhost:8377/metrics -openmetrics
//	curl -s localhost:8377/metrics | iprism-promlint
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iprism-promlint:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		url         = flag.String("url", "", "fetch the exposition from this endpoint (empty = read -f)")
		file        = flag.String("f", "-", "read the exposition from this file (\"-\" = stdin)")
		openMetrics = flag.Bool("openmetrics", false, "lint under OpenMetrics 1.0 rules (exemplars, # EOF) instead of text 0.0.4")
		timeout     = flag.Duration("timeout", 10*time.Second, "fetch timeout for -url")
	)
	flag.Parse()

	data, om, err := load(*url, *file, *openMetrics, *timeout)
	if err != nil {
		return err
	}
	if errs := telemetry.LintExposition(data, om); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "  ", e)
		}
		return fmt.Errorf("%d finding(s)", len(errs))
	}
	format := "text/plain 0.0.4"
	if om {
		format = "OpenMetrics 1.0"
	}
	fmt.Printf("ok: %d bytes conform (%s)\n", len(data), format)
	return nil
}

// load fetches the exposition. With -url and -openmetrics it negotiates the
// OpenMetrics content type so the endpoint serves (and is linted for)
// exemplars and the # EOF terminator.
func load(url, file string, openMetrics bool, timeout time.Duration) ([]byte, bool, error) {
	if url == "" {
		if file == "-" {
			data, err := io.ReadAll(os.Stdin)
			return data, openMetrics, err
		}
		data, err := os.ReadFile(file)
		return data, openMetrics, err
	}
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, false, err
	}
	if openMetrics {
		req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	}
	client := &http.Client{Timeout: timeout}
	resp, err := client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	return data, openMetrics, err
}
