// Command iprism-ltfma reproduces Table II: the Lead-Time-For-Mitigating-
// Accident comparison of STI against TTC, Dist. CIPA and the two PKL
// variants across the accident scenarios of every typology.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iprism-ltfma:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n      = flag.Int("n", 60, "scenario instances per typology (paper: 1000)")
		seed   = flag.Int64("seed", 2024, "suite generation seed")
		stride = flag.Int("stride", 2, "metric evaluation stride in simulator steps")
	)
	flag.Parse()

	opt := experiments.DefaultOptions()
	opt.ScenariosPerTypology = *n
	opt.Seed = *seed
	opt.MetricStride = *stride

	suites, err := experiments.BuildSuites(opt)
	if err != nil {
		return err
	}
	res, err := experiments.TableII(suites, opt)
	if err != nil {
		return err
	}

	fmt.Println("Table II: Lead-Time-For-Mitigating-Accident (seconds), mean (SD)")
	fmt.Printf("%-12s", "Metric")
	for _, ty := range res.Typologies {
		fmt.Printf(" %16s", ty)
	}
	fmt.Printf(" %10s\n", "Average")
	for _, name := range experiments.MetricNames {
		fmt.Printf("%-12s", name)
		for _, cell := range res.LTFMA[name] {
			fmt.Printf(" %16s", cell)
		}
		fmt.Printf(" %10.2f\n", res.Average[name])
	}
	fmt.Println("\nPaper averages: TTC 0.83, Dist. CIPA 1.38, PKL-All 0.75,")
	fmt.Println("PKL-Holdout 1.19, STI 3.69 (4.4x over TTC, 4.9x over PKL).")
	return nil
}
