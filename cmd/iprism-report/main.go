// Command iprism-report reproduces the paper's entire evaluation in one
// run — Tables I–IV, Figs. 5–7, and the roundabout study — and writes a
// markdown report.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iprism-report:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 60, "scenario instances per typology (paper: 1000)")
		episodes = flag.Int("episodes", 60, "SMC training episodes per typology (paper: 100)")
		seed     = flag.Int64("seed", 2024, "generation and training seed")
		out      = flag.String("o", "report.md", "output path ('-' for stdout)")
		telAddr  = flag.String("telemetry", "", "serve expvar and pprof on this address (e.g. localhost:6060)")
		journal  = flag.String("journal", "", "write a JSONL telemetry journal to this path")
	)
	flag.Parse()

	telCleanup, err := telemetry.Setup(*telAddr, *journal)
	if err != nil {
		return err
	}
	defer telCleanup()

	opt := experiments.DefaultOptions()
	opt.ScenariosPerTypology = *n
	opt.Seed = *seed
	opt.TrainEpisodes = *episodes

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := experiments.Report(w, opt, time.Now); err != nil {
		return err
	}
	if *out != "-" {
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}
