// Risk monitor: watch STI, TTC and Dist. CIPA evolve side by side while an
// ADS drives through a lead-slowdown scenario — the online risk-assessment
// use case of §V-A/V-B, built on the public iprism.RiskMonitor API.
//
// Run with:
//
//	go run ./examples/riskmonitor
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/agent"
	"repro/iprism"
)

func main() {
	scn := iprism.GenerateScenarios(iprism.LeadSlowdown, 40, 11)[3]
	w, err := scn.Build()
	if err != nil {
		log.Fatal(err)
	}

	monitor, err := iprism.NewRiskMonitor(iprism.DefaultReachConfig(), 5)
	if err != nil {
		log.Fatal(err)
	}
	driver := monitor.Wrap(agent.NewLBC(agent.DefaultLBCConfig()))

	fmt.Printf("lead slowdown scenario #%d: lead at %.0f m doing %.1f m/s, stops at gap %.0f m\n\n",
		scn.ID, scn.Hyper["npc_vehicle_location"], scn.Hyper["npc_vehicle_speed"],
		scn.Hyper["event_trigger_distance"])

	out := iprism.RunEpisode(w, driver, nil)

	fmt.Printf("%6s %8s %8s %8s %10s\n", "t(s)", "STI", "TTC", "CIPA", "key actor")
	for _, s := range monitor.Samples() {
		fmt.Printf("%6.1f %8.2f %8s %8s %10d\n",
			s.Time, s.STI, fmtFinite(s.TTC), fmtFinite(s.DistCIPA), s.MostThreatening)
		if s.Time > 8 {
			fmt.Println("   ... (truncated)")
			break
		}
	}

	switch {
	case out.Collision:
		fmt.Printf("\ncollision at step %d (impact %.1f m/s)\n", out.CollisionStep, out.ImpactSpeed)
	case out.Completed:
		fmt.Println("\ngoal reached without collision")
	default:
		fmt.Println("\nepisode ended (timeout)")
	}
	fmt.Printf("peak combined STI: %.2f\n", monitor.PeakSTI())
	for _, iv := range monitor.RiskyIntervals(0.3) {
		fmt.Printf("risky interval: %.1fs – %.1fs\n", iv[0], iv[1])
	}
}

func fmtFinite(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.2f", v)
}
