// Ghost cut-in mitigation: the paper's headline scenario end to end.
// A baseline LBC-like ADS is driven through ghost cut-in scenarios and
// crashes; an SMC is trained with the Eq. 8 STI reward on one crash
// scenario and re-evaluated on all of them.
//
// Run with:
//
//	go run ./examples/ghostcutin [-episodes 40] [-n 20]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/agent"
	"repro/iprism"
)

func main() {
	var (
		n        = flag.Int("n", 20, "ghost cut-in scenario instances")
		episodes = flag.Int("episodes", 40, "SMC training episodes")
		seed     = flag.Int64("seed", 7, "scenario seed")
	)
	flag.Parse()

	scns := iprism.GenerateScenarios(iprism.GhostCutIn, *n, *seed)
	makeDriver := func() iprism.Driver { return agent.NewLBC(agent.DefaultLBCConfig()) }

	// 1. Baseline: how often does the ADS crash?
	var crashes []iprism.Scenario
	for _, s := range scns {
		w, err := s.Build()
		if err != nil {
			log.Fatal(err)
		}
		if out := iprism.RunEpisode(w, makeDriver(), nil); out.Collision {
			crashes = append(crashes, s)
		}
	}
	fmt.Printf("baseline LBC: %d/%d ghost cut-in scenarios end in collision\n", len(crashes), len(scns))
	if len(crashes) == 0 {
		fmt.Println("no crashes to mitigate; increase -n")
		return
	}

	// 2. Train the SMC on the first crash scenario.
	fmt.Printf("training SMC for %d episodes on scenario #%d...\n", *episodes, crashes[0].ID)
	ctrl, stats, err := iprism.TrainSMC(crashes[:1], makeDriver, iprism.DefaultSMCConfig(), *episodes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training done: %d episodes, %d training collisions, final epsilon %.2f\n",
		stats.Episodes, stats.Collisions, stats.FinalEpsilon)

	// 3. Re-evaluate with the mitigation controller in the loop.
	saved := 0
	for _, s := range crashes {
		w, err := s.Build()
		if err != nil {
			log.Fatal(err)
		}
		if out := iprism.RunEpisode(w, makeDriver(), ctrl.CloneForRun()); !out.Collision {
			saved++
		}
	}
	fmt.Printf("LBC+iPrism: %d/%d previously fatal scenarios now collision-free (%.0f%%)\n",
		saved, len(crashes), 100*float64(saved)/float64(len(crashes)))
	fmt.Println("(paper: iPrism prevents 49% of ghost cut-in accidents at full scale)")
}
