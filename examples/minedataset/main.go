// Mine safety-critical scenes from a driving corpus with STI — the §V-D
// workflow: generate the synthetic real-world corpus, score every sampled
// instant, and report the riskiest moments and their dominant actors.
//
// Run with:
//
//	go run ./examples/minedataset [-logs 30]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/dataset"
	"repro/iprism"
)

type riskyMoment struct {
	log, step int
	combined  float64
	keyActor  int
	keySTI    float64
}

func main() {
	var (
		logs = flag.Int("logs", 30, "number of synthetic drive logs")
		topK = flag.Int("top", 5, "how many risky moments to report")
		seed = flag.Int64("seed", 5, "corpus seed")
	)
	flag.Parse()

	cfg := dataset.DefaultCorpusConfig()
	cfg.Logs = *logs
	cfg.Seed = *seed
	corpus, err := dataset.GenerateCorpus(cfg)
	if err != nil {
		log.Fatal(err)
	}
	eval := iprism.NewEvaluator(iprism.DefaultReachConfig())

	var moments []riskyMoment
	var all []float64
	for li, l := range corpus {
		horizon := int(3.0 / l.Dt)
		for t := 0; t < l.Steps()-horizon-1; t += 10 {
			res := eval.Evaluate(l.Map, l.Ego[t], l.ActorsAt(t), l.FutureTrajectories(t))
			all = append(all, res.Combined)
			idx, v := res.MostThreatening()
			moments = append(moments, riskyMoment{
				log: li, step: t, combined: res.Combined, keyActor: idx, keySTI: v,
			})
		}
	}
	sort.Slice(moments, func(i, j int) bool { return moments[i].combined > moments[j].combined })

	zero := 0
	for _, v := range all {
		if v == 0 {
			zero++
		}
	}
	fmt.Printf("scored %d instants across %d logs; %.0f%% carry zero combined risk\n\n",
		len(all), len(corpus), 100*float64(zero)/float64(len(all)))

	fmt.Printf("top %d risky moments:\n", *topK)
	fmt.Printf("%6s %6s %10s %10s %10s\n", "log", "t(s)", "combined", "key actor", "key STI")
	for i := 0; i < *topK && i < len(moments); i++ {
		m := moments[i]
		l := corpus[m.log]
		kind := "-"
		if m.keyActor >= 0 {
			kind = l.Meta[m.keyActor].Kind.String()
		}
		fmt.Printf("%6d %6.1f %10.2f %10s %10.2f\n",
			m.log, float64(m.step)*l.Dt, m.combined, kind, m.keySTI)
	}
	fmt.Println("\nlike the paper's Argoverse study, the distribution is long-tailed:")
	fmt.Println("most driving is risk-free and the rare risky scenes are minable by STI.")
}
