// Quickstart: compute the Safety-Threat Indicator for a hand-built street
// scene — the ego vehicle approaching a slow lead while a second vehicle
// rides alongside in the adjacent lane (compare Fig. 1 of the paper).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/iprism"
)

func main() {
	// A two-lane road, 3.5 m lanes, running along +x.
	road, err := iprism.NewStraightRoad(2, 3.5, -100, 500)
	if err != nil {
		log.Fatal(err)
	}

	// Ego in the outer lane at 10 m/s.
	ego := iprism.VehicleState{Pos: iprism.V(0, 1.75), Speed: 10}

	// A slow lead 14 m ahead and an alongside vehicle blocking the
	// lane-change escape. Note the alongside vehicle never crosses the
	// ego's path — TTC is blind to it, STI is not.
	lead := iprism.NewVehicleActor(1, iprism.VehicleState{Pos: iprism.V(14, 1.75), Speed: 2})
	alongside := iprism.NewVehicleActor(2, iprism.VehicleState{Pos: iprism.V(2, 5.25), Speed: 10})
	actors := []*iprism.Actor{lead, alongside}

	eval := iprism.NewEvaluator(iprism.DefaultReachConfig())
	res := eval.EvaluateWithPrediction(road, ego, actors)

	fmt.Println("escape-route analysis (reach-tube volumes, m^2):")
	fmt.Printf("  empty world |T^∅| = %.0f\n", res.EmptyVolume)
	fmt.Printf("  all actors  |T|   = %.0f\n", res.BaseVolume)
	for i, a := range actors {
		fmt.Printf("  without #%d  |T/%d| = %.0f\n", a.ID, a.ID, res.WithoutVolume[i])
	}

	fmt.Println("\nSafety-Threat Indicator:")
	fmt.Printf("  lead vehicle      STI = %.2f\n", res.PerActor[0])
	fmt.Printf("  alongside vehicle STI = %.2f  (out of path, still risky)\n", res.PerActor[1])
	fmt.Printf("  combined          STI = %.2f\n", res.Combined)

	idx, v := res.MostThreatening()
	fmt.Printf("\nmost threatening actor: #%d (STI %.2f)\n", actors[idx].ID, v)
}
